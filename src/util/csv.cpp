#include "util/csv.hpp"

#include <istream>
#include <ostream>

namespace pandarus::util {
namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void write_field(std::ostream& os, std::string_view field) {
  if (!needs_quoting(field)) {
    os << field;
    return;
  }
  os << '"';
  for (char ch : field) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) os_ << ',';
    write_field(os_, fields[i]);
  }
  os_ << '\n';
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (ch == '\r') {
      // tolerate CRLF
    } else {
      current += ch;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::vector<std::string>> read_csv(std::istream& is) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line == "\r") continue;
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

}  // namespace pandarus::util
