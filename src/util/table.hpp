// Monospace table rendering for benchmark/report output.
//
// Every bench binary regenerating a paper table prints through this so the
// rows line up with the paper's layout.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pandarus::util {

enum class Align { kLeft, kRight };

class Table {
 public:
  /// Column headers define the table width; every row must have the same
  /// number of cells.
  explicit Table(std::vector<std::string> headers);

  void set_align(std::size_t column, Align align);
  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next added row.
  void add_separator();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace pandarus::util
