// Minimal JSON value parser for the offline event-replay path: parses
// one value per call (NDJSON consumers call it once per line), keeps
// object keys in source order, and distinguishes integers from doubles
// so simulated timestamps and ids round-trip exactly (SimTime spans the
// full int64 range; a double would lose precision past 2^53).
//
// Deliberately small: no serialization (the Event builder writes JSON),
// no DOM mutation, strings decoded with standard escapes (\uXXXX is
// decoded to UTF-8).  Invalid input yields std::nullopt.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pandarus::util::json {

class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  /// Numbers carry both representations; `is_int` marks values written
  /// without fraction/exponent that fit an int64 (parsed losslessly).
  double num_v = 0.0;
  std::int64_t int_v = 0;
  bool is_int = false;
  std::string str_v;
  std::vector<Value> arr;
  /// Members in source order (event columns keep their emission order).
  std::vector<std::pair<std::string, Value>> obj;

  /// First member with this key, or nullptr (objects only).
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const noexcept;
  [[nodiscard]] double as_double(double fallback = 0.0) const noexcept;
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept;
  [[nodiscard]] std::string_view as_string(
      std::string_view fallback = {}) const noexcept;

  /// Member lookups with fallbacks, for flat event objects.
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback = 0) const noexcept;
  [[nodiscard]] double get_double(std::string_view key,
                                  double fallback = 0.0) const noexcept;
  [[nodiscard]] bool get_bool(std::string_view key,
                              bool fallback = false) const noexcept;
  [[nodiscard]] std::string_view get_string(
      std::string_view key, std::string_view fallback = {}) const noexcept;
};

/// Parses exactly one JSON value (with optional surrounding whitespace);
/// std::nullopt on any syntax error or trailing garbage.
[[nodiscard]] std::optional<Value> parse(std::string_view text);

}  // namespace pandarus::util::json
