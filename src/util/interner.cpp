#include "util/interner.hpp"

namespace pandarus::util {

Symbol StringInterner::intern(std::string_view text) {
  const auto hit = ids_.find(text);
  if (hit != ids_.end()) return hit->second;
  const auto id = static_cast<Symbol>(views_.size());
  const auto it = ids_.emplace(std::string(text), id).first;
  views_.push_back(it->first);
  return id;
}

Symbol StringInterner::find(std::string_view text) const noexcept {
  const auto it = ids_.find(text);
  return it == ids_.end() ? kNoSymbol : it->second;
}

}  // namespace pandarus::util
