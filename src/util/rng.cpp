#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace pandarus::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Rng Rng::fork(std::uint64_t tag) noexcept {
  // Derive a child seed from the parent state and the tag, then advance
  // the parent so repeated forks with the same tag differ.
  std::uint64_t child_seed = hash_mix(next_u64(), tag, 0x9e3779b97f4a7c15ULL);
  return Rng(child_seed);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Debiased modulo (Lemire-style rejection).
  std::uint64_t x = next_u64();
  std::uint64_t threshold = (0 - range) % range;
  while (x < threshold) x = next_u64();
  return lo + static_cast<std::int64_t>(x % range);
}

std::size_t Rng::uniform_index(std::size_t n) noexcept {
  assert(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  // -mean * log(1 - u); 1 - u in (0, 1] avoids log(0).
  return -mean * std::log(1.0 - next_double());
}

double Rng::normal(double mu, double sigma) noexcept {
  // Box–Muller; u1 in (0,1].
  double u1 = 1.0 - next_double();
  double u2 = next_double();
  double r = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal_median(double median, double sigma) noexcept {
  assert(median > 0.0);
  return median * std::exp(normal(0.0, sigma));
}

double Rng::pareto_bounded(double lo, double hi, double alpha) noexcept {
  assert(lo > 0.0 && hi > lo && alpha > 0.0);
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's method.
    const double limit = std::exp(-mean);
    double prod = next_double();
    std::uint64_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= next_double();
    }
    return n;
  }
  // Normal approximation with continuity correction for large means.
  double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double target = next_double() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) noexcept {
  SplitMix64 sm(a ^ rotl(b, 23) ^ rotl(c, 47));
  std::uint64_t h = sm.next();
  h ^= sm.next();
  return h;
}

double hash_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace pandarus::util
