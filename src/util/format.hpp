// Human-readable number formatting for reports and tables.
#pragma once

#include <cstdint>
#include <string>

namespace pandarus::util {

/// "4.6 GB", "20.5 GB", "957.98 PB" — decimal (SI) units, as used in the
/// paper's figures and tables.
[[nodiscard]] std::string format_bytes(double bytes, int precision = 2);

/// "163.9 MBps" — throughput in decimal megabytes per second.
[[nodiscard]] std::string format_rate(double bytes_per_sec, int precision = 1);

/// "1,585,229" — thousands separators.
[[nodiscard]] std::string format_count(std::uint64_t n);
[[nodiscard]] std::string format_count(std::int64_t n);

/// "8.43%" with the given precision.
[[nodiscard]] std::string format_percent(double fraction, int precision = 2);

/// Fixed-precision double.
[[nodiscard]] std::string format_fixed(double x, int precision = 2);

}  // namespace pandarus::util
