#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pandarus::util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::min() const noexcept { return n_ == 0 ? 0.0 : min_; }

double OnlineStats::max() const noexcept { return n_ == 0 ? 0.0 : max_; }

void GeometricMean::add(double x) noexcept {
  if (x <= 0.0 || !std::isfinite(x)) {
    ++skipped_;
    return;
  }
  ++n_;
  log_sum_ += std::log(x);
}

void GeometricMean::merge(const GeometricMean& other) noexcept {
  n_ += other.n_;
  skipped_ += other.skipped_;
  log_sum_ += other.log_sum_;
}

double GeometricMean::value() const noexcept {
  return n_ == 0 ? 0.0 : std::exp(log_sum_ / static_cast<double>(n_));
}

double quantile(std::span<const double> values, double q) {
  Quantiles quantiles(std::vector<double>(values.begin(), values.end()));
  return quantiles(q);
}

Quantiles::Quantiles(std::vector<double> values) : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Quantiles::operator()(double q) const {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double pearson_correlation(std::span<const double> x,
                           std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  OnlineStats sx;
  OnlineStats sy;
  for (std::size_t i = 0; i < n; ++i) {
    sx.add(x[i]);
    sy.add(y[i]);
  }
  const double mx = sx.mean();
  const double my = sy.mean();
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) cov += (x[i] - mx) * (y[i] - my);
  const double denom = sx.stddev() * sy.stddev() * static_cast<double>(n - 1);
  return denom == 0.0 ? 0.0 : cov / denom;
}

}  // namespace pandarus::util
