// Deterministic random-number generation for the simulator.
//
// Every stochastic component in pandarus (topology generation, workload
// arrival, transfer failure injection, metadata corruption) draws from an
// explicitly seeded generator so that an entire campaign is reproducible
// from a single 64-bit seed.  We use our own small generators instead of
// <random> engines so that results are bit-identical across standard
// library implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace pandarus::util {

/// SplitMix64: used for seeding and for cheap stateless hashing.
/// Passes BigCrush when used as a generator; here it mainly expands one
/// seed into independent streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality 64-bit generator with 2^256 state.
/// This is the workhorse generator for all simulation randomness.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  /// Creates an independent child stream (for per-component generators).
  /// Streams derived with distinct tags are statistically independent.
  [[nodiscard]] Rng fork(std::uint64_t tag) noexcept;

  std::uint64_t next_u64() noexcept;
  std::uint64_t operator()() noexcept { return next_u64(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n) noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal(double mu = 0.0, double sigma = 1.0) noexcept;

  /// Log-normal such that the *median* of the distribution is `median`
  /// and the shape parameter is `sigma` (sigma of the underlying normal).
  double lognormal_median(double median, double sigma) noexcept;

  /// Bounded Pareto on [lo, hi] with tail index alpha (> 0).
  /// Heavy-tailed file sizes and task sizes are drawn from this.
  double pareto_bounded(double lo, double hi, double alpha) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small mean,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Zero-weight entries are never selected; requires a positive total.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Stateless 64-bit mix of up to three keys; used for deterministic
/// per-entity jitter (e.g. per-site diurnal phase) without carrying RNG
/// state around.
[[nodiscard]] std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b = 0,
                                     std::uint64_t c = 0) noexcept;

/// Maps a 64-bit hash to a double in [0, 1).
[[nodiscard]] double hash_unit(std::uint64_t h) noexcept;

}  // namespace pandarus::util
