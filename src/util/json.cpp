#include "util/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace pandarus::util::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  bool value(Value& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        out.kind = Value::Kind::kString;
        return string(out.str_v);
      }
      case 't':
        out.kind = Value::Kind::kBool;
        out.bool_v = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::kBool;
        out.bool_v = false;
        return literal("false");
      case 'n':
        out.kind = Value::Kind::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(Value& out) {
    out.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      Value member;
      if (!value(member)) return false;
      out.obj.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array(Value& out) {
    out.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      Value element;
      if (!value(element)) return false;
      out.arr.push_back(std::move(element));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string(std::string& out) {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      const char c = text_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return false;
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              ++pos_;
              const char h = text_[pos_];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            append_utf8(out, cp);
            break;
          }
          default: return false;
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number(Value& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
      digits = true;
    }
    if (!digits) return false;
    bool integral = true;
    if (peek() == '.') {
      integral = false;
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.kind = Value::Kind::kNumber;
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out.is_int = true;
        out.int_v = v;
        out.num_v = static_cast<double>(v);
        return true;
      }
    }
    out.is_int = false;
    out.num_v = std::strtod(token.c_str(), nullptr);
    out.int_v = static_cast<std::int64_t>(out.num_v);
    return true;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t Value::as_int(std::int64_t fallback) const noexcept {
  if (kind != Kind::kNumber) return fallback;
  return is_int ? int_v : static_cast<std::int64_t>(num_v);
}

double Value::as_double(double fallback) const noexcept {
  return kind == Kind::kNumber ? num_v : fallback;
}

bool Value::as_bool(bool fallback) const noexcept {
  return kind == Kind::kBool ? bool_v : fallback;
}

std::string_view Value::as_string(std::string_view fallback) const noexcept {
  return kind == Kind::kString ? std::string_view(str_v) : fallback;
}

std::int64_t Value::get_int(std::string_view key,
                            std::int64_t fallback) const noexcept {
  const Value* v = find(key);
  return v != nullptr ? v->as_int(fallback) : fallback;
}

double Value::get_double(std::string_view key, double fallback) const noexcept {
  const Value* v = find(key);
  return v != nullptr ? v->as_double(fallback) : fallback;
}

bool Value::get_bool(std::string_view key, bool fallback) const noexcept {
  const Value* v = find(key);
  return v != nullptr ? v->as_bool(fallback) : fallback;
}

std::string_view Value::get_string(std::string_view key,
                                   std::string_view fallback) const noexcept {
  const Value* v = find(key);
  return v != nullptr ? v->as_string(fallback) : fallback;
}

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace pandarus::util::json
