#include "util/crc32.hpp"

#include <array>

namespace pandarus::util {
namespace {

const std::array<std::uint32_t, 256>& crc_table() noexcept {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t advance(std::uint32_t state, std::string_view data) noexcept {
  const auto& table = crc_table();
  for (const char ch : data) {
    state = table[(state ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
            (state >> 8);
  }
  return state;
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  return advance(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

void Crc32::update(std::string_view data) noexcept {
  state_ = advance(state_, data);
}

}  // namespace pandarus::util
