#include "util/time.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace pandarus::util {
namespace {

bool is_leap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap(year)) return 29;
  return kDays[static_cast<std::size_t>(month - 1)];
}

}  // namespace

std::string format_time(SimTime t, const CalendarAnchor& anchor) {
  // Negative times are clamped to the anchor for display purposes.
  std::int64_t total_sec = t >= 0 ? t / 1000 : 0;
  int year = anchor.year;
  int month = anchor.month;
  int day = anchor.day;
  std::int64_t day_count = total_sec / 86400;
  std::int64_t rem = total_sec % 86400;
  while (day_count > 0) {
    const int dim = days_in_month(year, month);
    if (day + day_count <= dim) {
      day += static_cast<int>(day_count);
      day_count = 0;
    } else {
      day_count -= (dim - day + 1);
      day = 1;
      if (++month > 12) {
        month = 1;
        ++year;
      }
    }
  }
  const int hh = static_cast<int>(rem / 3600);
  const int mm = static_cast<int>((rem % 3600) / 60);
  const int ss = static_cast<int>(rem % 60);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%02d-%02d %02d:%02d:%02d", month, day, hh,
                mm, ss);
  return buf;
}

std::string format_duration(SimDuration d) {
  char buf[64];
  if (d < 0) d = 0;
  const double sec = to_seconds(d);
  if (sec < 60.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", sec);
    return buf;
  }
  const std::int64_t total = d / 1000;
  const std::int64_t dd = total / 86400;
  const std::int64_t hh = (total % 86400) / 3600;
  const std::int64_t mm = (total % 3600) / 60;
  const std::int64_t ss = total % 60;
  if (dd > 0) {
    std::snprintf(buf, sizeof buf, "%lldd %02lldh %02lldm %02llds",
                  static_cast<long long>(dd), static_cast<long long>(hh),
                  static_cast<long long>(mm), static_cast<long long>(ss));
  } else if (hh > 0) {
    std::snprintf(buf, sizeof buf, "%lldh %02lldm %02llds",
                  static_cast<long long>(hh), static_cast<long long>(mm),
                  static_cast<long long>(ss));
  } else {
    std::snprintf(buf, sizeof buf, "%lldm %02llds",
                  static_cast<long long>(mm), static_cast<long long>(ss));
  }
  return buf;
}

}  // namespace pandarus::util
