// Simulation time.
//
// All simulator timestamps are milliseconds relative to the campaign
// start (SimTime 0 == the first instant of the observation window, e.g.
// 2025-04-01 00:00:00 in the paper's 8-day study).  Millisecond
// resolution is fine-grained enough to order staging events within a
// one-second transfer while keeping arithmetic in fast 64-bit integers.
#pragma once

#include <cstdint>
#include <string>

namespace pandarus::util {

using SimTime = std::int64_t;      ///< milliseconds since campaign start
using SimDuration = std::int64_t;  ///< milliseconds

inline constexpr SimTime kNever = INT64_MAX;

inline constexpr SimDuration msec(std::int64_t n) noexcept { return n; }
inline constexpr SimDuration seconds(double n) noexcept {
  return static_cast<SimDuration>(n * 1000.0);
}
inline constexpr SimDuration minutes(double n) noexcept {
  return seconds(n * 60.0);
}
inline constexpr SimDuration hours(double n) noexcept {
  return minutes(n * 60.0);
}
inline constexpr SimDuration days(double n) noexcept { return hours(n * 24.0); }

inline constexpr double to_seconds(SimDuration d) noexcept {
  return static_cast<double>(d) / 1000.0;
}
inline constexpr double to_hours(SimDuration d) noexcept {
  return to_seconds(d) / 3600.0;
}
inline constexpr double to_days(SimDuration d) noexcept {
  return to_hours(d) / 24.0;
}

/// Calendar anchor used only for human-readable output: SimTime 0 maps to
/// `start_month`/`start_day` 00:00 (the paper's study starts 04/01/2025).
struct CalendarAnchor {
  int year = 2025;
  int month = 4;
  int day = 1;
};

/// Formats a SimTime as "MM-DD HH:MM:SS" relative to the anchor.
/// Month lengths follow the Gregorian calendar (the anchor year's leap
/// status is respected).
[[nodiscard]] std::string format_time(SimTime t,
                                      const CalendarAnchor& anchor = {});

/// Formats a duration as a compact "1d 02h 03m 04s" / "42.5s" string.
[[nodiscard]] std::string format_duration(SimDuration d);

}  // namespace pandarus::util
