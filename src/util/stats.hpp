// Streaming and batch statistics used throughout the analysis layer.
//
// The paper reports arithmetic means, geometric means (e.g. per-site-pair
// transfer volume: mean 77.75 TB vs geometric mean 1.11 TB) and percentile
// structure of heavy-tailed distributions, so both kinds of accumulators
// are first-class here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pandarus::util {

/// Welford online accumulator: mean / variance / min / max in one pass.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  /// Mean of the observed values; 0 when empty.
  [[nodiscard]] double mean() const noexcept;
  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric-mean accumulator over strictly positive samples.
/// Non-positive samples are counted separately and excluded, mirroring how
/// the paper computes the geometric mean over non-zero site pairs only.
class GeometricMean {
 public:
  void add(double x) noexcept;
  void merge(const GeometricMean& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] std::size_t skipped() const noexcept { return skipped_; }
  /// Geometric mean of positive samples; 0 when none were observed.
  [[nodiscard]] double value() const noexcept;

 private:
  std::size_t n_ = 0;
  std::size_t skipped_ = 0;
  double log_sum_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) of `values` using linear
/// interpolation between order statistics.  The input is copied and
/// sorted; for repeated queries use `Quantiles`.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Pre-sorted quantile evaluator for repeated queries over one sample.
class Quantiles {
 public:
  explicit Quantiles(std::vector<double> values);

  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::size_t count() const noexcept { return sorted_.size(); }
  [[nodiscard]] double operator()(double q) const;
  [[nodiscard]] double median() const { return (*this)(0.5); }

 private:
  std::vector<double> sorted_;
};

/// Pearson correlation coefficient of two equally sized samples.
/// Returns 0 when either side has zero variance or fewer than 2 points.
/// The paper uses this kind of check ("no significant correlation between
/// total transfer size and queuing time", §5.3 / Fig. 5).
[[nodiscard]] double pearson_correlation(std::span<const double> x,
                                         std::span<const double> y);

}  // namespace pandarus::util
