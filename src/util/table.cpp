#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

namespace pandarus::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kLeft) {
  assert(!headers_.empty());
}

void Table::set_align(std::size_t column, Align align) {
  aligns_.at(column) = align;
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back({std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());
  }

  auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      if (aligns_[c] == Align::kRight) {
        s += " " + std::string(pad, ' ') + cells[c] + " |";
      } else {
        s += " " + cells[c] + std::string(pad, ' ') + " |";
      }
    }
    return s + "\n";
  };

  std::string out = rule() + emit_row(headers_) + rule();
  for (const auto& row : rows_) {
    if (row.separator_before) out += rule();
    out += emit_row(row.cells);
  }
  out += rule();
  return out;
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace pandarus::util
