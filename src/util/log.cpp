#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace pandarus::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarning: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?    ";
}

/// Wall-clock "HH:MM:SS.mmm" (UTC-agnostic: seconds within the day).
void append_timestamp(std::string& out) {
  using namespace std::chrono;
  const auto now = system_clock::now().time_since_epoch();
  const auto ms = duration_cast<milliseconds>(now).count();
  const auto in_day = ms % (24LL * 3600 * 1000);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld.%03lld",
                static_cast<long long>(in_day / 3'600'000),
                static_cast<long long>(in_day / 60'000 % 60),
                static_cast<long long>(in_day / 1000 % 60),
                static_cast<long long>(in_day % 1000));
  out += buf;
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // The full line is assembled first and written with ONE fwrite: stdio
  // locks the stream per call, so concurrent workers (thread-pool tasks,
  // obs drop warnings) can interleave whole lines but never fragments.
  std::string line;
  line.reserve(message.size() + 32);
  line += '[';
  append_timestamp(line);
  line += "] [";
  line += level_tag(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace pandarus::util
