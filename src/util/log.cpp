#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace pandarus::util {
namespace {

LogLevel level_from_env() noexcept {
  const char* env = std::getenv("PANDARUS_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  return parse_log_level(env, LogLevel::kWarning);
}

// Dynamic initialization runs before main() (single-threaded), so the
// environment override is in place before any log call.
std::atomic<LogLevel> g_level{level_from_env()};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarning: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?    ";
}

/// Wall-clock "HH:MM:SS.mmm" (UTC-agnostic: seconds within the day).
void append_timestamp(std::string& out) {
  using namespace std::chrono;
  const auto now = system_clock::now().time_since_epoch();
  const auto ms = duration_cast<milliseconds>(now).count();
  const auto in_day = ms % (24LL * 3600 * 1000);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld.%03lld",
                static_cast<long long>(in_day / 3'600'000),
                static_cast<long long>(in_day / 60'000 % 60),
                static_cast<long long>(in_day / 1000 % 60),
                static_cast<long long>(in_day % 1000));
  out += buf;
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name, LogLevel fallback) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return fallback;
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // The full line is assembled first and written with ONE fwrite: stdio
  // locks the stream per call, so concurrent workers (thread-pool tasks,
  // obs drop warnings) can interleave whole lines but never fragments.
  std::string line;
  line.reserve(message.size() + 32);
  line += '[';
  append_timestamp(line);
  line += "] [";
  line += level_tag(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace pandarus::util
