#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pandarus::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarning: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?    ";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace pandarus::util
