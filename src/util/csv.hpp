// Minimal CSV reading/writing (RFC-4180 quoting) for telemetry
// export/import and figure artefacts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace pandarus::util {

/// Streams rows to an std::ostream.  Fields containing commas, quotes or
/// newlines are quoted; everything else is written verbatim.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& fields);

  /// Variadic convenience: accepts anything streamable.
  template <typename... Ts>
  void row(const Ts&... fields) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(fields));
    (cells.push_back(stringify(fields)), ...);
    write_row(cells);
  }

 private:
  static std::string stringify(const std::string& s) { return s; }
  static std::string stringify(const char* s) { return s; }
  static std::string stringify(std::string_view s) { return std::string(s); }
  template <typename T>
  static std::string stringify(const T& v) {
    return std::to_string(v);
  }

  std::ostream& os_;
};

/// Parses one CSV line into fields (handles quoted fields with embedded
/// commas and doubled quotes; embedded newlines are not supported since
/// the telemetry exporters never produce them).
[[nodiscard]] std::vector<std::string> parse_csv_line(std::string_view line);

/// Reads all rows from a stream; skips fully empty lines.
[[nodiscard]] std::vector<std::vector<std::string>> read_csv(std::istream& is);

}  // namespace pandarus::util
