// Tiny leveled logger.  Thread-safe, globally leveled; benches set
// kWarning to keep table output clean while examples run at kInfo.
// Each line is timestamped and emitted with a single fwrite, so
// concurrent workers never interleave partial lines.
//
// The initial level comes from PANDARUS_LOG_LEVEL when set (one of
// error/warn/info/debug/off, case-insensitive; unrecognized values are
// ignored) and defaults to kWarning otherwise.  Explicit
// set_log_level() calls still override the environment.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace pandarus::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses a PANDARUS_LOG_LEVEL-style name ("error", "warn"/"warning",
/// "info", "debug", "off"; case-insensitive); `fallback` on anything
/// else.
[[nodiscard]] LogLevel parse_log_level(std::string_view name,
                                       LogLevel fallback) noexcept;

/// Writes one line to stderr if `level` is at or above the global level.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warning() {
  return detail::LogStream(LogLevel::kWarning);
}
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace pandarus::util
