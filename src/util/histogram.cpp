#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace pandarus::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) noexcept {
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard FP edge at hi_
  ++counts_[idx];
}

void Histogram::merge(const Histogram& other) {
  assert(counts_.size() == other.counts_.size() && lo_ == other.lo_ &&
         hi_ == other.hi_);
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::uint64_t Histogram::total() const noexcept {
  return std::accumulate(counts_.begin(), counts_.end(),
                         underflow_ + overflow_);
}

double Histogram::cumulative_below(double x) const noexcept {
  if (x <= lo_) return 0.0;
  double acc = static_cast<double>(underflow_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (x >= bin_hi(i)) {
      acc += static_cast<double>(counts_[i]);
    } else if (x > bin_lo(i)) {
      acc += static_cast<double>(counts_[i]) * (x - bin_lo(i)) / width_;
      return acc;
    } else {
      return acc;
    }
  }
  return acc;
}

namespace {

std::string bar(std::uint64_t count, std::uint64_t peak,
                std::size_t max_width) {
  if (peak == 0) return {};
  auto w = static_cast<std::size_t>(
      static_cast<double>(count) / static_cast<double>(peak) *
      static_cast<double>(max_width));
  if (count > 0 && w == 0) w = 1;
  return std::string(w, '#');
}

}  // namespace

std::string Histogram::to_string(std::size_t max_width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  if (underflow_ > 0) os << "  < lo: " << underflow_ << '\n';
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    os << "  [" << bin_lo(i) << ", " << bin_hi(i) << "): " << counts_[i]
       << "  " << bar(counts_[i], peak, max_width) << '\n';
  }
  if (overflow_ > 0) os << "  >= hi: " << overflow_ << '\n';
  return os.str();
}

void Log2Histogram::add(double x) noexcept {
  if (x <= 0.0 || !std::isfinite(x)) {
    ++nonpositive_;
    return;
  }
  int e = static_cast<int>(std::floor(std::log2(x)));
  e = std::clamp(e, kMinExp, kMaxExp - 1);
  ++counts_[static_cast<std::size_t>(e - kMinExp)];
  ++total_;
}

std::string Log2Histogram::to_string(std::size_t max_width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  if (nonpositive_ > 0) os << "  <= 0: " << nonpositive_ << '\n';
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int e = kMinExp + static_cast<int>(i);
    os << "  [2^" << e << ", 2^" << (e + 1) << "): " << counts_[i] << "  "
       << bar(counts_[i], peak, max_width) << '\n';
  }
  return os.str();
}

}  // namespace pandarus::util
