// Fault injection and the self-healing transfer path: plan sampling,
// injector window activation, retry backoff, circuit breakers,
// alternate-source rerouting, and the campaign-level invariants
// (drain + transfer conservation + byte-identical replay) under chaos.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/events_replay.hpp"
#include "dms/catalog.hpp"
#include "dms/transfer.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "grid/builder.hpp"
#include "obs/event_log.hpp"
#include "scenario/campaign.hpp"
#include "sim/scheduler.hpp"
#include "wms/panda_server.hpp"

namespace pandarus {
namespace {

/// Tiny 3-site world mirroring the dms_test fixture: T0 and T1 joined
/// by a fast link, a T2 behind slow ones.
struct World {
  grid::Topology topo;
  dms::RseRegistry rses;
  dms::FileCatalog catalog;
  dms::ReplicaCatalog replicas{catalog, rses};
  sim::Scheduler scheduler;

  grid::SiteId t0 = 0, t1 = 0, t2 = 0;
  dms::RseId t0_disk = dms::kNoRse, t1_disk = dms::kNoRse,
             t2_disk = dms::kNoRse;

  World() {
    auto add = [&](const char* name, grid::Tier tier) {
      grid::Site s;
      s.name = name;
      s.tier = tier;
      s.lan_bandwidth_bps = 1e9;
      s.max_parallel_streams = 4;
      return topo.add_site(s);
    };
    t0 = add("T0", grid::Tier::kT0);
    t1 = add("T1", grid::Tier::kT1);
    t2 = add("T2", grid::Tier::kT2);
    for (grid::SiteId i = 0; i < 3; ++i) {
      for (grid::SiteId j = 0; j < 3; ++j) {
        grid::NetworkLink link;
        link.key = {i, j};
        link.capacity_bps = i == j ? 1e9 : (i <= 1 && j <= 1 ? 500e6 : 50e6);
        link.latency_ms = 1.0;
        link.max_active = i == j ? 4 : 2;
        grid::LoadModel::Params load;
        load.mean_util = 0.0;
        load.diurnal_amplitude = 0.0;
        load.burst_prob = 0.0;
        link.load = grid::LoadModel(load);
        topo.add_link(link);
      }
    }
    auto add_rse = [&](const char* name, grid::SiteId site,
                       dms::RseKind kind) {
      dms::Rse r;
      r.name = name;
      r.site = site;
      r.kind = kind;
      return rses.add(std::move(r));
    };
    t0_disk = add_rse("T0_DISK", t0, dms::RseKind::kDisk);
    t1_disk = add_rse("T1_DISK", t1, dms::RseKind::kDisk);
    t2_disk = add_rse("T2_DISK", t2, dms::RseKind::kDisk);
  }

  dms::TransferEngine::Params quiet_params() {
    dms::TransferEngine::Params p;
    p.failure_prob = 0.0;
    p.stall_prob = 0.0;
    p.registration_failure_prob = 0.0;
    p.per_stream_cap_bps = 1e12;
    return p;
  }

  dms::FileId one_file(std::uint64_t bytes, dms::RseId at) {
    const dms::DatasetId ds = catalog.create_dataset("data", "data.test");
    const dms::FileId f = catalog.add_file(ds, bytes);
    replicas.add_replica(f, at);
    return f;
  }
};

TEST(FaultPlan, SampleIsDeterministicAndClamped) {
  World w;
  fault::Plan::SampleParams params;
  params.intensity = 3.0;
  const util::SimTime horizon = util::days(2);

  const fault::Plan a = fault::Plan::sample(params, w.topo, horizon, 99);
  const fault::Plan b = fault::Plan::sample(params, w.topo, horizon, 99);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  EXPECT_FALSE(a.windows.empty());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].kind, b.windows[i].kind);
    EXPECT_EQ(a.windows[i].begin, b.windows[i].begin);
    EXPECT_EQ(a.windows[i].end, b.windows[i].end);
    EXPECT_EQ(a.windows[i].site, b.windows[i].site);
    // Clamped to the horizon, non-empty, time-ordered.
    EXPECT_GE(a.windows[i].begin, 0);
    EXPECT_LE(a.windows[i].end, horizon);
    EXPECT_LT(a.windows[i].begin, a.windows[i].end);
    if (i > 0) {
      EXPECT_GE(a.windows[i].begin, a.windows[i - 1].begin);
    }
  }

  const fault::Plan other = fault::Plan::sample(params, w.topo, horizon, 100);
  ASSERT_FALSE(other.empty());
  EXPECT_TRUE(other.windows.size() != a.windows.size() ||
              other.windows[0].begin != a.windows[0].begin);

  params.intensity = 0.0;
  EXPECT_TRUE(fault::Plan::sample(params, w.topo, horizon, 99).empty());
}

TEST(FaultInjector, WindowsActivateAndExpire) {
  World w;
  fault::Injector injector(w.scheduler);

  fault::Plan plan;
  fault::FaultWindow outage;
  outage.kind = fault::FaultKind::kSiteOutage;
  outage.site = w.t1;
  outage.begin = 100;
  outage.end = 200;
  plan.add(outage);

  fault::FaultWindow blackout;
  blackout.kind = fault::FaultKind::kLinkBlackout;
  blackout.link = {w.t0, w.t2};
  blackout.begin = 150;
  blackout.end = 250;
  plan.add(blackout);

  fault::FaultWindow brownout;
  brownout.kind = fault::FaultKind::kLinkBrownout;
  brownout.link = {w.t0, w.t1};
  brownout.capacity_factor = 0.25;
  brownout.begin = 100;
  brownout.end = 300;
  plan.add(brownout);

  fault::FaultWindow service;
  service.kind = fault::FaultKind::kServiceBrownout;
  service.abort_boost = 0.2;
  service.begin = 50;
  service.end = 150;
  plan.add(service);

  injector.arm(plan);
  EXPECT_EQ(injector.stats().armed, 4u);

  EXPECT_FALSE(injector.site_down(w.t1));
  EXPECT_DOUBLE_EQ(injector.abort_boost(), 0.0);

  w.scheduler.run_until(120);
  EXPECT_TRUE(injector.site_down(w.t1));
  EXPECT_TRUE(injector.storage_down(w.t1));
  EXPECT_TRUE(injector.link_blocked(w.t0, w.t1));  // endpoint down
  EXPECT_FALSE(injector.link_blocked(w.t0, w.t2));
  EXPECT_DOUBLE_EQ(injector.link_capacity_factor(w.t0, w.t1), 0.25);
  EXPECT_DOUBLE_EQ(injector.link_capacity_factor(w.t1, w.t0), 1.0);
  EXPECT_DOUBLE_EQ(injector.abort_boost(), 0.2);
  EXPECT_EQ(injector.blocked_until(w.t0, w.t1), 200);

  w.scheduler.run_until(180);
  EXPECT_TRUE(injector.link_blocked(w.t0, w.t2));
  EXPECT_EQ(injector.blocked_until(w.t0, w.t2), 250);
  EXPECT_DOUBLE_EQ(injector.abort_boost(), 0.0);

  w.scheduler.run_until(1000);
  EXPECT_FALSE(injector.site_down(w.t1));
  EXPECT_FALSE(injector.link_blocked(w.t0, w.t2));
  EXPECT_DOUBLE_EQ(injector.link_capacity_factor(w.t0, w.t1), 1.0);
  EXPECT_EQ(injector.active_count(), 0u);
  EXPECT_EQ(injector.stats().begun, 4u);
  EXPECT_EQ(injector.stats().ended, 4u);
}

TEST(TransferEngine, RetryBackoffDelaysRequeue) {
  World w;
  auto params = w.quiet_params();
  params.failure_prob = 1.0;  // every attempt aborts
  params.max_attempts = 3;
  params.retry_backoff_base = util::seconds(10);

  dms::TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(7),
                             params);
  std::vector<dms::TransferOutcome> outcomes;
  engine.set_sink([&outcomes](const dms::TransferOutcome& o) {
    outcomes.push_back(o);
  });

  const dms::FileId f = w.one_file(1'000'000, w.t0_disk);
  dms::TransferRequest req;
  req.file = f;
  req.size_bytes = 1'000'000;
  req.src = w.t0;
  req.dst = w.t1;
  engine.submit(std::move(req));
  w.scheduler.run_until(util::days(1));

  EXPECT_EQ(engine.stats().failed, 1u);
  EXPECT_EQ(engine.stats().retries, 2u);
  EXPECT_EQ(engine.stats().backoff_delays, 2u);
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_TRUE(w.scheduler.empty());
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].success);
  EXPECT_EQ(outcomes[0].attempts, 3u);
  EXPECT_EQ(outcomes[0].error, dms::TransferError::kAborted);
  // The two backoff delays (~10 s and ~20 s, jittered ±25%) must push
  // the terminal failure well past the no-backoff completion time.
  EXPECT_GT(outcomes[0].finished_at, util::seconds(20));
}

TEST(TransferEngine, BreakerOpensAndRejectsTerminally) {
  World w;
  auto params = w.quiet_params();
  params.failure_prob = 1.0;
  params.max_attempts = 2;
  params.breaker_enabled = true;
  params.breaker_threshold = 2;
  params.breaker_cooldown = util::minutes(10);

  dms::TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(7),
                             params);
  std::vector<dms::TransferOutcome> outcomes;
  engine.set_sink([&outcomes](const dms::TransferOutcome& o) {
    outcomes.push_back(o);
  });

  const dms::FileId f = w.one_file(1'000'000, w.t0_disk);
  for (int i = 0; i < 4; ++i) {
    dms::TransferRequest req;
    req.file = f;
    req.size_bytes = 1'000'000;
    req.src = w.t0;
    req.dst = w.t1;
    engine.submit(std::move(req));
  }
  w.scheduler.run_until(util::days(2));

  EXPECT_GE(engine.stats().breaker_opens, 1u);
  EXPECT_EQ(engine.stats().completed, 0u);
  EXPECT_EQ(engine.stats().failed, 4u);
  EXPECT_EQ(engine.stats().submitted,
            engine.stats().completed + engine.stats().failed +
                engine.stats().quota_rejections);
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_TRUE(w.scheduler.empty());
  bool saw_breaker_rejection = false;
  for (const dms::TransferOutcome& o : outcomes) {
    if (o.error == dms::TransferError::kBreakerRejected) {
      saw_breaker_rejection = true;
    }
  }
  EXPECT_TRUE(saw_breaker_rejection);
}

TEST(TransferEngine, AlternateSourceRoutesAroundBlackout) {
  World w;
  auto params = w.quiet_params();
  params.alternate_source_retry = true;

  dms::TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(7),
                             params);
  engine.enable_alternate_sources(w.rses);
  fault::Injector injector(w.scheduler);
  engine.set_injector(injector);

  const dms::FileId f = w.one_file(1'000'000, w.t0_disk);
  w.replicas.add_replica(f, w.t1_disk);

  fault::Plan plan;
  fault::FaultWindow blackout;
  blackout.kind = fault::FaultKind::kLinkBlackout;
  blackout.link = {w.t0, w.t2};
  blackout.begin = 10;
  blackout.end = util::hours(2);
  plan.add(blackout);
  injector.arm(plan);

  std::vector<dms::TransferOutcome> outcomes;
  engine.set_sink([&outcomes](const dms::TransferOutcome& o) {
    outcomes.push_back(o);
  });
  w.scheduler.schedule_at(util::minutes(1), [&engine, &w, f] {
    dms::TransferRequest req;
    req.file = f;
    req.size_bytes = 1'000'000;
    req.src = w.t0;  // the blacked-out source
    req.dst = w.t2;
    engine.submit(std::move(req));
  });
  w.scheduler.run_until(util::days(1));

  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].success);
  EXPECT_EQ(outcomes[0].src, w.t1);  // rerouted to the healthy replica
  EXPECT_GE(engine.stats().alt_source_retries, 1u);
  // Rerouting beat waiting: done long before the blackout lifts.
  EXPECT_LT(outcomes[0].finished_at, util::hours(2));
  EXPECT_EQ(engine.in_flight(), 0u);
}

TEST(TransferEngine, BlackoutAbortsActiveAndRecoversAfterWindow) {
  World w;
  auto params = w.quiet_params();
  params.max_attempts = 3;

  dms::TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(7),
                             params);
  fault::Injector injector(w.scheduler);
  engine.set_injector(injector);

  // 10 GB over 500e6 B/s needs ~20 s; the blackout hits mid-flight.
  const dms::FileId f = w.one_file(10'000'000'000ULL, w.t0_disk);
  fault::Plan plan;
  fault::FaultWindow blackout;
  blackout.kind = fault::FaultKind::kLinkBlackout;
  blackout.link = {w.t0, w.t1};
  blackout.begin = util::seconds(5);
  blackout.end = util::minutes(5);
  plan.add(blackout);
  injector.arm(plan);

  std::vector<dms::TransferOutcome> outcomes;
  engine.set_sink([&outcomes](const dms::TransferOutcome& o) {
    outcomes.push_back(o);
  });
  dms::TransferRequest req;
  req.file = f;
  req.size_bytes = 10'000'000'000ULL;
  req.src = w.t0;
  req.dst = w.t1;
  engine.submit(std::move(req));
  w.scheduler.run_until(util::days(1));

  // The in-flight attempt aborted at window begin, requeued, waited out
  // the blackout, and completed on a later attempt.
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].success);
  EXPECT_GE(outcomes[0].attempts, 2u);
  EXPECT_GT(outcomes[0].finished_at, util::minutes(5));
  EXPECT_GE(engine.stats().retries, 1u);
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_TRUE(w.scheduler.empty());
}

TEST(TransferEngine, StalledTransferOutlivesWatchdogAndStillFinalizes) {
  World w;
  auto params = w.quiet_params();
  params.stall_prob = 1.0;
  params.stall_factor_min = 0.001;
  params.stall_factor_max = 0.001;

  dms::TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(7),
                             params);
  std::vector<dms::TransferOutcome> outcomes;
  engine.set_sink([&outcomes](const dms::TransferOutcome& o) {
    outcomes.push_back(o);
  });

  const dms::FileId f = w.one_file(5'000'000'000ULL, w.t0_disk);
  dms::TransferRequest req;
  req.file = f;
  req.size_bytes = 5'000'000'000ULL;
  req.src = w.t0;
  req.dst = w.t1;
  engine.submit(std::move(req));
  w.scheduler.run_until(util::days(7));

  // At 0.1% of fair share the transfer takes hours — far beyond the
  // PandaServer staging watchdog (stage_timeout defaults to 20 min) —
  // yet it must still finalize, release in_flight, and leave the
  // scheduler drainable rather than leak a pinned event.
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].success);
  EXPECT_GT(outcomes[0].finished_at,
            wms::PandaServer::Params{}.stage_timeout);
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_TRUE(w.scheduler.empty());
}

TEST(TransferEngine, ProbeAdvancesByteProgressToProbeInstant) {
  World w;
  auto params = w.quiet_params();
  params.rerate_interval = util::hours(10);  // no rerate between probes

  dms::TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(7),
                             params);
  const dms::FileId f = w.one_file(10'000'000'000ULL, w.t0_disk);
  dms::TransferRequest req;
  req.file = f;
  req.size_bytes = 10'000'000'000ULL;
  req.src = w.t0;
  req.dst = w.t1;
  engine.submit(std::move(req));

  // ~20 s transfer at 500 MB/s; probe 10 s in: roughly half the bytes
  // must be gone even though no rate re-evaluation has run since start.
  w.scheduler.run_until(util::seconds(10));
  const auto probes = engine.probe_links();
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_EQ(probes[0].active, 1u);
  EXPECT_LT(probes[0].bytes_in_flight, 6'000'000'000ULL);
  EXPECT_GT(probes[0].bytes_in_flight, 4'000'000'000ULL);

  w.scheduler.run_until(util::days(1));
  EXPECT_TRUE(engine.probe_links().empty());
}

TEST(CampaignFaults, DrainsAndConservesTransfersAcrossIntensities) {
  for (const double intensity : {0.5, 2.0, 5.0}) {
    scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
    config.faults.intensity = intensity;
    config.with_self_healing();
    const scenario::ScenarioResult r = scenario::run_campaign(config);

    SCOPED_TRACE(intensity);
    EXPECT_TRUE(r.drained);
    EXPECT_EQ(r.transfers_in_flight, 0u);
    EXPECT_EQ(r.transfers.submitted,
              r.transfers.completed + r.transfers.failed +
                  r.transfers.quota_rejections);
  }
}

TEST(CampaignFaults, SiteOutageKillsRunningJobsAndBrokerageSkips) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.with_self_healing();
  // Take the three biggest sites down for most of the morning.
  for (grid::SiteId site = 0; site < 3; ++site) {
    fault::FaultWindow outage;
    outage.kind = fault::FaultKind::kSiteOutage;
    outage.site = site;
    outage.begin = util::hours(2);
    outage.end = util::hours(8);
    config.fault_windows.push_back(outage);
  }
  const scenario::ScenarioResult r = scenario::run_campaign(config);

  EXPECT_EQ(r.fault_windows, 3u);
  EXPECT_GT(r.panda.site_outage_kills, 0u);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.transfers.submitted,
            r.transfers.completed + r.transfers.failed +
                r.transfers.quota_rejections);
}

TEST(CampaignFaults, IdenticalSeedAndPlanGiveByteIdenticalEvents) {
  auto run = [] {
    obs::EventLog log;
    log.install();
    scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
    config.faults.intensity = 2.0;
    config.with_self_healing();
    (void)scenario::run_campaign(config);
    log.uninstall();
    return log.to_ndjson();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"kind\":\"fault_window\""), std::string::npos);

  // The stream replays, carrying the fault windows and failure causes.
  std::istringstream in(a);
  const analysis::ReplayResult replay = analysis::replay_events(in);
  EXPECT_FALSE(replay.fault_windows.empty());
  EXPECT_GT(replay.kind_counts.count("fault_window"), 0u);
}

}  // namespace
}  // namespace pandarus
