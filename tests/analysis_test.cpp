// Unit tests for the analysis layer: heatmap, queuing breakdowns,
// bandwidth series, threshold sweeps, summaries, case-study extraction
// and the volume-growth model.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/bandwidth.hpp"
#include "analysis/breakdown.hpp"
#include "analysis/casestudy.hpp"
#include "analysis/heatmap.hpp"
#include "analysis/summary.hpp"
#include "analysis/threshold.hpp"
#include "analysis/volume_growth.hpp"

namespace pandarus::analysis {
namespace {

using telemetry::FileDirection;
using telemetry::FileRecord;
using telemetry::JobRecord;
using telemetry::MetadataStore;
using telemetry::TransferRecord;

grid::Topology three_sites() {
  grid::Topology topo;
  for (const char* name : {"A", "B", "C"}) {
    grid::Site s;
    s.name = name;
    topo.add_site(s);
  }
  return topo;
}

TransferRecord transfer(std::uint64_t id, grid::SiteId src, grid::SiteId dst,
                        std::uint64_t size, util::SimTime t0,
                        util::SimTime t1, std::int64_t taskid = -1,
                        dms::Activity activity =
                            dms::Activity::kDataRebalance) {
  TransferRecord t;
  t.transfer_id = id;
  t.jeditaskid = taskid;
  t.lfn = "f" + std::to_string(id);
  t.dataset = "ds";
  t.proddblock = "blk";
  t.scope = "mc23";
  t.file_size = size;
  t.source_site = src;
  t.destination_site = dst;
  t.activity = activity;
  t.started_at = t0;
  t.finished_at = t1;
  t.success = true;
  return t;
}

TEST(Heatmap, CellsAndSummary) {
  MetadataStore store;
  store.record_transfer(transfer(1, 0, 0, 1000, 0, 10));  // local
  store.record_transfer(transfer(2, 0, 1, 500, 0, 10));   // remote
  store.record_transfer(transfer(3, 0, grid::kUnknownSite, 200, 0, 10));
  TransferRecord failed = transfer(4, 1, 2, 999, 0, 10);
  failed.success = false;  // excluded
  store.record_transfer(failed);

  const grid::Topology topo = three_sites();
  TransferHeatmap hm(store, topo);
  EXPECT_EQ(hm.dimension(), 4u);
  EXPECT_DOUBLE_EQ(hm.cell(0, 0), 1000.0);
  EXPECT_DOUBLE_EQ(hm.cell(0, 1), 500.0);
  EXPECT_DOUBLE_EQ(hm.cell(0, hm.unknown_index()), 200.0);
  EXPECT_DOUBLE_EQ(hm.cell(1, 2), 0.0);

  const auto s = hm.summary();
  EXPECT_DOUBLE_EQ(s.total_bytes, 1700.0);
  EXPECT_DOUBLE_EQ(s.local_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(s.unknown_bytes, 200.0);
  EXPECT_EQ(s.nonzero_pairs, 3u);
  EXPECT_NEAR(s.local_fraction(), 1000.0 / 1700.0, 1e-12);
  // Heavy-tail signature: arithmetic mean over all pairs far below the
  // geometric mean over nonzero pairs is possible; both must be positive.
  EXPECT_GT(s.geomean_pair_bytes, 0.0);
  EXPECT_GT(s.mean_pair_bytes, 0.0);

  const auto top = hm.top_cells(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].bytes, 1000.0);
  EXPECT_TRUE(top[0].local);
  EXPECT_EQ(top[1].src_name, "A");
  EXPECT_EQ(top[1].dst_name, "B");

  std::ostringstream csv;
  hm.write_csv(csv);
  EXPECT_NE(csv.str().find("unknown"), std::string::npos);
  EXPECT_FALSE(hm.to_ascii().empty());
}

/// Store with one matched job whose numbers are easy to verify.
struct MatchedFixture {
  MetadataStore store;
  core::MatchResult result;

  explicit MatchedFixture(bool failed_job = false,
                          bool failed_task = false) {
    JobRecord j;
    j.pandaid = 1;
    j.jeditaskid = 7;
    j.computing_site = 0;
    j.creation_time = 0;
    j.start_time = 1000;
    j.end_time = 3000;
    j.ninputfilebytes = 600;
    j.failed = failed_job;
    j.task_status =
        failed_task ? wms::TaskStatus::kFailed : wms::TaskStatus::kDone;
    store.record_job(j);

    FileRecord f;
    f.pandaid = 1;
    f.jeditaskid = 7;
    f.lfn = "f10";
    f.dataset = "ds";
    f.proddblock = "blk";
    f.scope = "mc23";
    f.file_size = 600;
    store.record_file(f);

    store.record_transfer(
        transfer(10, 0, 0, 600, 100, 500, 7,
                 dms::Activity::kAnalysisDownload));

    core::Matcher matcher(store);
    result = matcher.run(core::MatchOptions::exact());
  }
};

TEST(Breakdown, RowsCarryMetrics) {
  MatchedFixture fx;
  const auto rows = build_breakdown(fx.store, fx.result);
  ASSERT_EQ(rows.size(), 1u);
  const BreakdownRow& row = rows[0];
  EXPECT_EQ(row.pandaid, 1);
  EXPECT_EQ(row.queuing_time, 1000);
  EXPECT_EQ(row.transfer_time_in_queue, 400);
  EXPECT_NEAR(row.queue_fraction, 0.4, 1e-12);
  EXPECT_EQ(row.transferred_bytes, 600u);
  EXPECT_EQ(row.locality, core::LocalityClass::kAllLocal);
  EXPECT_FALSE(row.job_failed);
}

TEST(Breakdown, TopByQueuingFiltersAndSorts) {
  std::vector<BreakdownRow> rows;
  for (int i = 0; i < 100; ++i) {
    BreakdownRow r;
    r.pandaid = i;
    r.locality = i % 2 == 0 ? core::LocalityClass::kAllLocal
                            : core::LocalityClass::kAllRemote;
    r.queuing_time = 1000 * (i + 1);
    r.queue_fraction = i % 4 == 0 ? 0.5 : 0.01;  // only some pass 10%
    rows.push_back(r);
  }
  const auto top =
      top_by_queuing(rows, core::LocalityClass::kAllLocal, 0.10, 10);
  ASSERT_EQ(top.size(), 10u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].queuing_time, top[i].queuing_time);
  }
  for (const auto& r : top) {
    EXPECT_EQ(r.locality, core::LocalityClass::kAllLocal);
    EXPECT_GE(r.queue_fraction, 0.10);
  }
}

TEST(Breakdown, AggregatesSeparateZeroFractions) {
  std::vector<BreakdownRow> rows(4);
  rows[0].queue_fraction = 0.1;
  rows[1].queue_fraction = 0.4;
  rows[2].queue_fraction = 0.0;
  rows[3].queue_fraction = 0.0;
  const auto agg = aggregate(rows);
  EXPECT_NEAR(agg.mean_queue_fraction, 0.25, 1e-12);
  EXPECT_NEAR(agg.geomean_queue_fraction, 0.2, 1e-12);
  EXPECT_EQ(agg.zero_fraction_jobs, 2u);
}

TEST(Bandwidth, SeriesSpreadsBytesUniformly) {
  MetadataStore store;
  // 1 GB over [0, 10 s) on link A->B: 100 MBps in each 1-s bin.
  store.record_transfer(transfer(1, 0, 1, 1'000'000'000, 0,
                                 util::seconds(10)));
  const auto series =
      bandwidth_series(store, nullptr, 0, 1, util::seconds(1));
  ASSERT_EQ(series.size(), 10u);
  for (const auto& p : series) EXPECT_NEAR(p.mbps, 100.0, 1.0);
  const auto stats = series_stats(series);
  EXPECT_NEAR(stats.peak_mbps, 100.0, 1.0);
  EXPECT_NEAR(stats.burstiness(), 1.0, 0.05);
}

TEST(Bandwidth, SeriesRestrictedToMatchedSet) {
  MatchedFixture fx;
  // Unmatched traffic on the same pair must not contribute.
  fx.store.record_transfer(transfer(99, 0, 0, 1'000'000'000, 100, 500));
  const auto matched_series =
      bandwidth_series(fx.store, &fx.result, 0, 0, util::msec(100));
  const auto all_series =
      bandwidth_series(fx.store, nullptr, 0, 0, util::msec(100));
  double matched_total = 0.0;
  for (const auto& p : matched_series) matched_total += p.mbps;
  double all_total = 0.0;
  for (const auto& p : all_series) all_total += p.mbps;
  EXPECT_LT(matched_total, all_total / 100.0);
}

TEST(Bandwidth, TopPairsSplitsLocalAndRemote) {
  MatchedFixture fx;
  const auto local = top_matched_pairs(fx.store, fx.result, true, 5);
  const auto remote = top_matched_pairs(fx.store, fx.result, false, 5);
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0].src, 0u);
  EXPECT_EQ(local[0].bytes, 600u);
  EXPECT_TRUE(remote.empty());
}

TEST(Threshold, ClassifiesFourWays) {
  EXPECT_EQ(classify(false, false), StatusClass::kJobOkTaskOk);
  EXPECT_EQ(classify(true, false), StatusClass::kJobFailTaskOk);
  EXPECT_EQ(classify(false, true), StatusClass::kJobOkTaskFail);
  EXPECT_EQ(classify(true, true), StatusClass::kJobFailTaskFail);
}

TEST(Threshold, SweepCountsCumulatively) {
  std::vector<BreakdownRow> rows;
  auto add = [&](double fraction, bool jf, bool tf) {
    BreakdownRow r;
    r.queue_fraction = fraction;
    r.job_failed = jf;
    r.task_failed = tf;
    rows.push_back(r);
  };
  add(0.005, false, false);
  add(0.015, false, false);
  add(0.80, true, true);
  add(0.90, true, false);

  const double thresholds[] = {0.01, 0.02, 0.75, 1.0};
  const ThresholdSweep sweep = run_threshold_sweep(rows, thresholds);
  EXPECT_EQ(sweep.total_jobs, 4u);
  EXPECT_EQ(sweep.rows[0].counts[0], 1u);  // <= 1%
  EXPECT_EQ(sweep.rows[1].counts[0], 2u);  // <= 2%
  EXPECT_EQ(sweep.rows[3].total(), 4u);    // <= 100%
  // Jobs above 75%: one fail/fail and one fail/ok (the paper's "most of
  // these extreme cases correspond to failed jobs").
  const auto above = sweep.above(0.75);
  EXPECT_EQ(above[static_cast<std::size_t>(StatusClass::kJobFailTaskFail)],
            1u);
  EXPECT_EQ(above[static_cast<std::size_t>(StatusClass::kJobFailTaskOk)], 1u);
  EXPECT_EQ(above[static_cast<std::size_t>(StatusClass::kJobOkTaskOk)], 0u);
  EXPECT_EQ(sweep.successful_jobs(), 2u);
}

TEST(Threshold, DefaultThresholdsSpanPercents) {
  const auto t = default_thresholds();
  ASSERT_EQ(t.size(), 100u);
  EXPECT_DOUBLE_EQ(t.front(), 0.01);
  EXPECT_DOUBLE_EQ(t.back(), 1.0);
}

TEST(Summary, OverallAndTables) {
  MatchedFixture fx;
  const OverallSummary s = overall_summary(fx.store, fx.result);
  EXPECT_EQ(s.total_jobs, 1u);
  EXPECT_EQ(s.total_transfers, 1u);
  EXPECT_EQ(s.transfers_with_taskid, 1u);
  EXPECT_EQ(s.matched_transfers, 1u);
  EXPECT_EQ(s.matched_jobs, 1u);
  EXPECT_NEAR(s.matched_job_pct, 1.0, 1e-12);

  const ActivityBreakdown b = activity_breakdown(fx.store, fx.result);
  const auto& dl =
      b.rows[static_cast<std::size_t>(dms::Activity::kAnalysisDownload)];
  EXPECT_EQ(dl.matched, 1u);
  EXPECT_EQ(dl.total, 1u);
  EXPECT_NEAR(dl.percentage(), 1.0, 1e-12);

  core::Matcher matcher(fx.store);
  const core::TriMatchResult tri = core::run_all_methods(matcher);
  const MethodComparison cmp = compare_methods(fx.store, tri);
  EXPECT_EQ(cmp.transfers[0].local, 1u);
  EXPECT_EQ(cmp.jobs[0].all_local, 1u);
  // Monotone inclusion across methods.
  EXPECT_LE(cmp.transfers[0].total(), cmp.transfers[1].total());
  EXPECT_LE(cmp.transfers[1].total(), cmp.transfers[2].total());

  std::ostringstream os;
  print_overall(os, s);
  print_table1(os, b);
  print_table2(os, cmp);
  EXPECT_NE(os.str().find("Analysis Download"), std::string::npos);
  EXPECT_NE(os.str().find("RM2"), std::string::npos);
}

TEST(Summary, SharedTransferCountedOnce) {
  // Two jobs of one task matched to the same transfer: the unique count
  // must be 1 (the paper counts transfers, not (job, transfer) pairs).
  MatchedFixture fx;
  JobRecord j2 = fx.store.jobs()[0];
  j2.pandaid = 2;
  fx.store.record_job(j2);
  FileRecord f2 = fx.store.files()[0];
  f2.pandaid = 2;
  fx.store.record_file(f2);
  core::Matcher matcher(fx.store);
  const auto result = matcher.run(core::MatchOptions::exact());
  ASSERT_EQ(result.matched_job_count(), 2u);
  const OverallSummary s = overall_summary(fx.store, result);
  EXPECT_EQ(s.matched_transfers, 1u);
}

TEST(CaseStudy, SequentialStagingPicksHighestFraction) {
  MatchedFixture fx;
  // Add a second matched transfer so the spread is defined.
  TransferRecord t2 =
      transfer(11, 0, 0, 0, 500, 900, 7, dms::Activity::kAnalysisDownload);
  t2.lfn = "f11";
  t2.file_size = 300;
  fx.store.record_transfer(t2);
  FileRecord f2 = fx.store.files()[0];
  f2.lfn = "f11";
  f2.file_size = 300;
  fx.store.record_file(f2);
  // ninputfilebytes must match the new sum.
  fx.store.jobs_mutable()[0].ninputfilebytes = 900;

  core::Matcher matcher(fx.store);
  const core::TriMatchResult tri = core::run_all_methods(matcher);
  CaseStudyExtractor extractor(fx.store, tri);
  const auto cs = extractor.sequential_staging_case();
  ASSERT_TRUE(cs.has_value());
  EXPECT_EQ(cs->match.transfer_indices.size(), 2u);
  EXPECT_GT(cs->throughput_spread, 1.0);
  const grid::Topology topo = three_sites();
  EXPECT_FALSE(render_timeline(fx.store, cs->match).empty());
  EXPECT_NE(render_transfer_table(fx.store, topo, cs->match)
                .find("Analysis Download"),
            std::string::npos);
}

TEST(CaseStudy, FailedSpanningCaseRequiresFailure) {
  MatchedFixture fx;  // successful job only
  core::Matcher matcher(fx.store);
  const core::TriMatchResult tri = core::run_all_methods(matcher);
  CaseStudyExtractor extractor(fx.store, tri);
  EXPECT_FALSE(extractor.failed_spanning_case().has_value());
}

TEST(CaseStudy, Rm2RedundantCaseFindsDuplicates) {
  MatchedFixture fx;
  // Duplicate of f10 with UNKNOWN destination before job creation.
  TransferRecord dup =
      transfer(12, 1, grid::kUnknownSite, 600, -500, -100, 7,
               dms::Activity::kAnalysisDownload);
  dup.lfn = "f10";
  fx.store.record_transfer(dup);
  core::Matcher matcher(fx.store);
  const core::TriMatchResult tri = core::run_all_methods(matcher);
  CaseStudyExtractor extractor(fx.store, tri);
  const auto cs = extractor.rm2_redundant_case();
  ASSERT_TRUE(cs.has_value());
  ASSERT_EQ(cs->redundant.size(), 1u);
  EXPECT_EQ(cs->redundant[0].wasted_bytes(), 600u);
  ASSERT_EQ(cs->inferred_sites.size(), 1u);
  EXPECT_EQ(cs->inferred_sites[0].inferred_destination, 0u);
}

TEST(VolumeGrowth, ReachesExabyteByLastYear) {
  const auto years = simulate_volume_growth();
  ASSERT_EQ(years.size(), 16u);
  EXPECT_EQ(years.front().year, 2009);
  EXPECT_EQ(years.back().year, 2024);
  // Fig. 2's headline: ~1 EB by 2024, more than doubled since 2018.
  EXPECT_NEAR(years.back().total_pb, 1000.0, 120.0);
  double v2018 = 0.0;
  for (const auto& y : years) {
    if (y.year == 2018) v2018 = y.total_pb;
  }
  EXPECT_GT(years.back().total_pb, 2.0 * v2018);
  // Monotone growth with slower shutdown years.
  for (std::size_t i = 1; i < years.size(); ++i) {
    EXPECT_GT(years[i].total_pb, years[i - 1].total_pb);
  }
  EXPECT_LT(years[4].added_pb, years[5].added_pb * 2.0);  // sanity
  EXPECT_TRUE(is_shutdown_year(2013));
  EXPECT_TRUE(is_shutdown_year(2020));
  EXPECT_FALSE(is_shutdown_year(2016));
}

}  // namespace
}  // namespace pandarus::analysis
