// FlowTracker tests on hand-built timelines: the critical-path
// decomposition (phases partition wall-clock exactly), the stage-in
// union/overlap math (pure-sequential flagged, parallel staging not),
// retry/reroute chains, watchdog clipping of in-flight attempts,
// redundant-transfer detection, link attribution and its deterministic
// tie-breaks, collapsed-stack rendering, flow_* event emission, and a
// campaign-level invariant + determinism check.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/critical_path.hpp"
#include "json_validator.hpp"
#include "obs/event_log.hpp"
#include "obs/flow.hpp"
#include "scenario/campaign.hpp"

namespace {

using namespace pandarus;
using JsonValidator = pandarus::testing::JsonValidator;

// Drives one flow through its whole lifecycle with explicit timestamps;
// every test below is a variation on this skeleton.
struct FlowBuilder {
  explicit FlowBuilder(obs::FlowTracker& t) : tracker(t) {}

  FlowBuilder& begin(std::int64_t pandaid, std::int64_t ts) {
    id = pandaid;
    tracker.begin_flow(pandaid, /*taskid=*/100, /*attempt=*/1, ts);
    return *this;
  }
  FlowBuilder& broker(std::int64_t site, std::int64_t ts) {
    tracker.broker_scored(id, 5);
    tracker.broker_decision(id, site, ts);
    return *this;
  }
  /// One submit+link+start+terminal-success transfer over [s, e).
  FlowBuilder& transfer(std::uint64_t tid, std::int64_t file,
                        std::int64_t src, std::int64_t dst, std::int64_t s,
                        std::int64_t e, bool registered = true) {
    tracker.transfer_submitted(tid, file, src, dst, s);
    tracker.link_transfer(id, tid, s, /*shared=*/false);
    tracker.attempt_start(tid, 1, src, dst, s);
    tracker.attempt_end(tid, e, /*success=*/true, /*terminal=*/true,
                        registered);
    return *this;
  }

  obs::FlowTracker& tracker;
  std::int64_t id = 0;
};

const obs::FlowSummary& only_flow(const obs::FlowTracker& tracker) {
  EXPECT_EQ(tracker.completed().size(), 1u);
  return tracker.completed().front();
}

std::int64_t phase_sum(const obs::PhaseBreakdown& ph) {
  return ph.broker_ms + ph.stage_in_ms + ph.queue_ms + ph.run_ms +
         ph.stage_out_ms;
}

// --- critical-path decomposition --------------------------------------------

TEST(FlowCriticalPath, PureSequentialStagingIsFlaggedWithOverlapZero) {
  obs::FlowTracker tracker(/*emit=*/false);
  FlowBuilder(tracker)
      .begin(1, 0)
      .broker(7, 10);
  tracker.stage_begin(1, 10);
  // Two back-to-back transfers: the second starts when the first ends.
  FlowBuilder fb(tracker);
  fb.id = 1;
  fb.transfer(11, 500, 2, 7, 10, 110);
  fb.transfer(12, 501, 3, 7, 110, 210);
  tracker.queue_enter(1, 210, false);
  tracker.run_begin(1, 300);
  tracker.stage_out_begin(1, 400);
  tracker.end_flow(1, 450, /*failed=*/false, /*error=*/0);

  const obs::FlowSummary& flow = only_flow(tracker);
  const obs::PhaseBreakdown& ph = flow.phases;
  EXPECT_EQ(ph.broker_ms, 10);
  EXPECT_EQ(ph.stage_in_ms, 200);
  EXPECT_EQ(ph.queue_ms, 90);
  EXPECT_EQ(ph.run_ms, 100);
  EXPECT_EQ(ph.stage_out_ms, 50);
  EXPECT_EQ(ph.wall_ms, 450);
  EXPECT_EQ(phase_sum(ph), ph.wall_ms);

  // No concurrency at all: union == sum, overlap == 0, flag set.
  EXPECT_EQ(ph.stage_in_serialized_ms, 200);
  EXPECT_EQ(ph.stage_in_busy_ms, 200);
  EXPECT_DOUBLE_EQ(ph.stage_in_overlap, 0.0);
  EXPECT_TRUE(ph.sequential_staging);
  EXPECT_EQ(ph.stage_in_transfers, 2u);
  EXPECT_EQ(ph.stage_in_attempts, 2u);

  // Each link owned its own 100 ms segment; equal shares tie-break on
  // (src, dst) ascending.
  ASSERT_EQ(flow.link_shares.size(), 2u);
  EXPECT_EQ(flow.critical_src(), 2);
  EXPECT_EQ(flow.critical_dst(), 7);
  EXPECT_EQ(flow.critical_ms(), 100);
  EXPECT_EQ(flow.link_shares[1].src, 3);
  EXPECT_EQ(flow.link_shares[1].ms, 100);

  const obs::FlowTotals totals = tracker.totals();
  EXPECT_EQ(totals.flows, 1u);
  EXPECT_EQ(totals.sequential_staging, 1u);
  EXPECT_EQ(totals.failed, 0u);
}

TEST(FlowCriticalPath, ParallelStagingOverlapsAndChargesLastFinisher) {
  obs::FlowTracker tracker(/*emit=*/false);
  FlowBuilder fb(tracker);
  fb.begin(2, 0).broker(7, 10);
  tracker.stage_begin(2, 10);
  // Concurrent transfers: [10, 150) and [10, 210).  The union is 200 ms
  // but 140 ms of it is double-covered, so overlap is well above the
  // sequential-staging threshold.
  fb.transfer(21, 500, 2, 7, 10, 150);
  fb.transfer(22, 501, 3, 7, 10, 210);
  tracker.queue_enter(2, 210, false);
  tracker.run_begin(2, 210);
  tracker.stage_out_begin(2, 210);
  tracker.end_flow(2, 210, false, 0);

  const obs::PhaseBreakdown& ph = only_flow(tracker).phases;
  EXPECT_EQ(ph.stage_in_serialized_ms, 200);
  EXPECT_EQ(ph.stage_in_busy_ms, 340);
  EXPECT_NEAR(ph.stage_in_overlap, 1.0 - 200.0 / 340.0, 1e-12);
  EXPECT_FALSE(ph.sequential_staging);
  EXPECT_EQ(phase_sum(ph), ph.wall_ms);

  // Both segments are charged to transfer 22 (the one finishing last):
  // the job was never waiting on transfer 21 alone.
  const obs::FlowSummary& flow = only_flow(tracker);
  ASSERT_EQ(flow.link_shares.size(), 1u);
  EXPECT_EQ(flow.critical_src(), 3);
  EXPECT_EQ(flow.critical_ms(), 200);
}

TEST(FlowCriticalPath, RetryAndRerouteChainAttributesPerAttemptLink) {
  obs::FlowTracker tracker(/*emit=*/false);
  tracker.begin_flow(3, 100, 2, 0);
  tracker.broker_decision(3, 7, 0);
  tracker.stage_begin(3, 0);
  // Attempt 1 from site 4 fails at 50, the engine reroutes, attempt 2
  // from site 5 succeeds over [60, 160).
  tracker.transfer_submitted(31, 600, 4, 7, 0);
  tracker.link_transfer(3, 31, 0, false);
  tracker.attempt_start(31, 1, 4, 7, 0);
  tracker.attempt_end(31, 50, /*success=*/false, /*terminal=*/false,
                      /*registered=*/false);
  tracker.transfer_rerouted(31);
  tracker.attempt_start(31, 2, 5, 7, 60);
  tracker.attempt_end(31, 160, true, true, true);
  tracker.queue_enter(3, 160, false);
  tracker.run_begin(3, 160);
  tracker.stage_out_begin(3, 160);
  tracker.end_flow(3, 160, false, 0);

  const obs::FlowSummary& flow = only_flow(tracker);
  const obs::PhaseBreakdown& ph = flow.phases;
  EXPECT_EQ(ph.stage_in_transfers, 1u);
  EXPECT_EQ(ph.stage_in_attempts, 2u);
  EXPECT_EQ(ph.reroutes, 1u);
  EXPECT_EQ(ph.stage_in_serialized_ms, 150);  // 50 + 100, gap excluded
  EXPECT_EQ(ph.stage_in_ms, 160);
  EXPECT_EQ(phase_sum(ph), ph.wall_ms);

  // The failed attempt's link still owns the time the job spent waiting
  // on it; the rerouted attempt owns the rest.
  ASSERT_EQ(flow.link_shares.size(), 2u);
  EXPECT_EQ(flow.critical_src(), 5);
  EXPECT_EQ(flow.critical_ms(), 100);
  EXPECT_EQ(flow.link_shares[1].src, 4);
  EXPECT_EQ(flow.link_shares[1].ms, 50);
  EXPECT_EQ(tracker.totals().reroutes, 1u);

  const auto ranking = tracker.link_ranking();
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].src, 5);
  EXPECT_EQ(ranking[0].critical_ms, 100);
  EXPECT_EQ(ranking[0].flows, 1u);
}

TEST(FlowCriticalPath, WatchdogReleaseChargesInFlightAttemptToWindowEnd) {
  obs::FlowTracker tracker(/*emit=*/false);
  tracker.begin_flow(4, 100, 1, 0);
  tracker.broker_decision(4, 7, 0);
  tracker.stage_begin(4, 0);
  // The transfer never finishes; the staging watchdog releases the job
  // into the queue at 100 anyway.
  tracker.transfer_submitted(41, 700, 2, 7, 0);
  tracker.link_transfer(4, 41, 0, false);
  tracker.attempt_start(41, 1, 2, 7, 0);
  tracker.queue_enter(4, 100, /*watchdog_release=*/true);
  tracker.run_begin(4, 120);
  tracker.stage_out_begin(4, 170);
  tracker.end_flow(4, 180, false, 0);

  const obs::FlowSummary& flow = only_flow(tracker);
  EXPECT_TRUE(flow.watchdog_release);
  // In-flight attempt is pessimistically charged up to the window end.
  EXPECT_EQ(flow.phases.stage_in_serialized_ms, 100);
  EXPECT_EQ(flow.phases.stage_in_ms, 100);
  EXPECT_EQ(flow.critical_src(), 2);
  EXPECT_EQ(flow.critical_ms(), 100);
  EXPECT_EQ(phase_sum(flow.phases), flow.phases.wall_ms);
  EXPECT_EQ(tracker.totals().watchdog_releases, 1u);
}

TEST(FlowCriticalPath, MissingBoundariesCollapseAndPartitionStaysExact) {
  obs::FlowTracker tracker(/*emit=*/false);
  // A job killed before it ever staged: only begin and end exist.
  tracker.begin_flow(5, 100, 1, 100);
  tracker.end_flow(5, 500, /*failed=*/true, /*error=*/42);

  const obs::FlowSummary& flow = only_flow(tracker);
  EXPECT_TRUE(flow.failed);
  EXPECT_EQ(flow.error, 42);
  EXPECT_EQ(flow.phases.wall_ms, 400);
  // Unreached phases collapse onto the end boundary: all the wall time
  // lands in broker-wait and the partition stays exact.
  EXPECT_EQ(flow.phases.broker_ms, 400);
  EXPECT_EQ(flow.phases.stage_in_ms, 0);
  EXPECT_EQ(flow.phases.run_ms, 0);
  EXPECT_EQ(phase_sum(flow.phases), flow.phases.wall_ms);
  EXPECT_FALSE(flow.phases.sequential_staging);
  EXPECT_EQ(tracker.totals().failed, 1u);
}

// --- redundancy -------------------------------------------------------------

TEST(FlowRedundancy, SecondTransferOfUnregisteredFileIsRedundant) {
  obs::FlowTracker tracker(/*emit=*/false);
  FlowBuilder fb(tracker);
  fb.begin(6, 0).broker(7, 0);
  tracker.stage_begin(6, 0);
  // First copy lands but is never catalogued; the second submit of the
  // same (file, dst) re-moves bytes that are already there.
  fb.transfer(61, 800, 2, 7, 0, 50, /*registered=*/false);
  fb.transfer(62, 800, 3, 7, 60, 120);
  tracker.queue_enter(6, 120, false);
  tracker.run_begin(6, 120);
  tracker.stage_out_begin(6, 120);
  tracker.end_flow(6, 120, false, 0);

  const obs::PhaseBreakdown& ph = only_flow(tracker).phases;
  EXPECT_EQ(ph.unregistered, 1u);
  EXPECT_EQ(ph.redundant_transfers, 1u);
  EXPECT_EQ(tracker.totals().redundant_transfers, 1u);
}

TEST(FlowRedundancy, ConcurrentInFlightDuplicateIsRedundant) {
  obs::FlowTracker tracker(/*emit=*/false);
  tracker.begin_flow(7, 100, 1, 0);
  tracker.stage_begin(7, 0);
  tracker.transfer_submitted(71, 900, 2, 7, 0);
  tracker.link_transfer(7, 71, 0, false);
  // Same (file, dst) submitted while the first is still in flight.
  tracker.transfer_submitted(72, 900, 3, 7, 10);
  tracker.link_transfer(7, 72, 10, false);
  EXPECT_EQ(tracker.totals().redundant_transfers, 1u);
  // A registered success clears the presence: a later re-stage of the
  // same file (e.g. after cache eviction) is legitimate.
  tracker.attempt_start(71, 1, 2, 7, 0);
  tracker.attempt_end(71, 20, true, true, true);
  tracker.attempt_start(72, 1, 3, 7, 10);
  tracker.attempt_end(72, 30, true, true, true);
  tracker.transfer_submitted(73, 900, 2, 7, 1000);
  EXPECT_EQ(tracker.totals().redundant_transfers, 1u);
  tracker.end_flow(7, 1000, false, 0);
}

// --- collapsed stacks -------------------------------------------------------

TEST(FlowCollapsed, StacksAreLabeledAndDeterministic) {
  obs::FlowTracker tracker(/*emit=*/false);
  FlowBuilder fb(tracker);
  fb.begin(8, 0).broker(7, 10);
  tracker.stage_begin(8, 10);
  fb.transfer(81, 500, 2, 7, 10, 110);
  tracker.queue_enter(8, 150, false);
  tracker.run_begin(8, 250);
  tracker.stage_out_begin(8, 350);
  tracker.end_flow(8, 400, false, 0);

  const std::string numeric = tracker.to_collapsed();
  EXPECT_NE(numeric.find("campaign;site_7;broker 10\n"), std::string::npos)
      << numeric;
  EXPECT_NE(
      numeric.find("campaign;site_7;stage_in;link_site_2->site_7 100\n"),
      std::string::npos);
  EXPECT_NE(numeric.find("campaign;site_7;stage_in;idle 40\n"),
            std::string::npos);
  EXPECT_NE(numeric.find("campaign;site_7;queue 100\n"), std::string::npos);
  EXPECT_NE(numeric.find("campaign;site_7;run 100\n"), std::string::npos);
  EXPECT_NE(numeric.find("campaign;site_7;stage_out 50\n"),
            std::string::npos);

  // Site labels are sanitized (separators would corrupt the format) and
  // rendering is a pure function of the tracker state.
  const auto name = [](std::int64_t site) {
    return site == 7 ? std::string("CERN PROD;T0") : std::string();
  };
  const std::string labeled = tracker.to_collapsed(name);
  EXPECT_NE(labeled.find("campaign;CERN_PROD_T0;queue 100\n"),
            std::string::npos)
      << labeled;
  EXPECT_EQ(tracker.to_collapsed(), numeric);
}

// --- event emission ---------------------------------------------------------

TEST(FlowEmission, FlowEventsReachTheInstalledEventLog) {
  ASSERT_EQ(obs::FlowTracker::installed(), nullptr);
  obs::EventLog log;
  log.install();
  {
    obs::FlowTracker tracker;  // emitting
    tracker.install();
    ASSERT_EQ(obs::FlowTracker::installed(), &tracker);
    FlowBuilder fb(tracker);
    fb.begin(9, 0).broker(7, 10);
    tracker.stage_begin(9, 10);
    fb.transfer(91, 500, 2, 7, 10, 110);
    tracker.queue_enter(9, 110, false);
    tracker.run_begin(9, 200);
    tracker.stage_out_begin(9, 300);
    tracker.end_flow(9, 350, false, 0);
    tracker.uninstall();
  }
  EXPECT_EQ(obs::FlowTracker::installed(), nullptr);
  log.uninstall();

  const std::string ndjson = log.to_ndjson();
  for (const char* kind :
       {"flow_begin", "flow_broker", "flow_stage", "flow_link", "flow_queue",
        "flow_run", "flow_stage_out", "flow_end"}) {
    EXPECT_NE(ndjson.find("\"kind\":\"" + std::string(kind) + "\""),
              std::string::npos)
        << "missing " << kind;
  }
  // flow_end carries the full decomposition.
  EXPECT_NE(ndjson.find("\"wall_ms\":350"), std::string::npos) << ndjson;
  EXPECT_NE(ndjson.find("\"crit_src\":2"), std::string::npos);
}

// --- campaign invariants ----------------------------------------------------

TEST(FlowCampaign, PhasesPartitionWallAndRunsAreDeterministic) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.days = 0.5;
  config.seed = 20250401;

  const auto run_once = [&config] {
    obs::FlowTracker tracker;
    tracker.install();
    const scenario::ScenarioResult result = scenario::run_campaign(config);
    tracker.uninstall();
    return std::tuple{std::vector<obs::FlowSummary>(tracker.completed()),
                      tracker.totals(), tracker.link_ranking(),
                      result.events_processed};
  };

  const auto [flows, totals, ranking, events] = run_once();
  ASSERT_GT(flows.size(), 0u);
  EXPECT_EQ(totals.flows, flows.size());

  std::int64_t attributed = 0;
  for (const obs::FlowSummary& flow : flows) {
    const obs::PhaseBreakdown& ph = flow.phases;
    ASSERT_EQ(phase_sum(ph), ph.wall_ms) << "pandaid " << flow.pandaid;
    ASSERT_GE(ph.wall_ms, 0);
    ASSERT_LE(ph.stage_in_serialized_ms, ph.stage_in_ms);
    ASSERT_LE(ph.stage_in_serialized_ms, ph.stage_in_busy_ms);
    ASSERT_GE(ph.stage_in_overlap, 0.0);
    ASSERT_LE(ph.stage_in_overlap, 1.0);
    std::int64_t share_sum = 0;
    for (const auto& share : flow.link_shares) share_sum += share.ms;
    // Link shares partition the serialized stage-in time exactly.
    ASSERT_EQ(share_sum, ph.stage_in_serialized_ms);
    attributed += share_sum;
  }
  std::int64_t ranked = 0;
  for (const auto& link : ranking) ranked += link.critical_ms;
  EXPECT_EQ(ranked, attributed);

  // Same seed, fresh tracker: byte-for-byte identical attribution.
  const auto [flows2, totals2, ranking2, events2] = run_once();
  EXPECT_EQ(events2, events);
  ASSERT_EQ(flows2.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(flows2[i].pandaid, flows[i].pandaid);
    EXPECT_EQ(flows2[i].phases.wall_ms, flows[i].phases.wall_ms);
    EXPECT_EQ(flows2[i].phases.stage_in_serialized_ms,
              flows[i].phases.stage_in_serialized_ms);
    EXPECT_EQ(flows2[i].critical_ms(), flows[i].critical_ms());
  }
  EXPECT_EQ(totals2.flows, totals.flows);
  EXPECT_EQ(totals2.redundant_transfers, totals.redundant_transfers);
  ASSERT_EQ(ranking2.size(), ranking.size());
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    EXPECT_EQ(ranking2[i].src, ranking[i].src);
    EXPECT_EQ(ranking2[i].dst, ranking[i].dst);
    EXPECT_EQ(ranking2[i].critical_ms, ranking[i].critical_ms);
  }
}

// --- analyzer quantiles -----------------------------------------------------

TEST(FlowQuantiles, PhaseQuantilesCoverEveryPhaseRow) {
  obs::FlowTracker tracker(/*emit=*/false);
  for (std::int64_t i = 1; i <= 4; ++i) {
    tracker.begin_flow(i, 100, 1, 0);
    tracker.stage_begin(i, 10 * i);
    tracker.queue_enter(i, 20 * i, false);
    tracker.run_begin(i, 40 * i);
    tracker.stage_out_begin(i, 80 * i);
    tracker.end_flow(i, 100 * i, false, 0);
  }
  const analysis::FlowAnalysis out = analysis::analyze_flows(tracker);
  ASSERT_EQ(out.flows.size(), 4u);
  ASSERT_EQ(out.quantiles.size(), 7u);
  std::int64_t wall_total = 0;
  for (const analysis::PhaseQuantiles& q : out.quantiles) {
    EXPECT_LE(q.p50, q.p95);
    EXPECT_LE(q.p95, q.p99);
    EXPECT_LE(q.p99, q.max);
    if (q.phase == "wall") wall_total = q.total_ms;
  }
  EXPECT_EQ(wall_total, 100 + 200 + 300 + 400);
  // Rendering is total: every phase row appears in the table.
  const std::string table = analysis::render_attribution(out);
  for (const char* phase : {"broker", "stage_in", "queue", "run",
                            "stage_out", "wall"}) {
    EXPECT_NE(table.find(phase), std::string::npos) << table;
  }
}

}  // namespace
