// Unit tests for the telemetry layer: records, store queries, recorder
// conversion, corruption injection, CSV round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/corruption.hpp"
#include "telemetry/io.hpp"
#include "telemetry/query.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/store.hpp"

namespace pandarus::telemetry {
namespace {

TransferRecord basic_transfer(std::uint64_t id, std::int64_t taskid = 5) {
  TransferRecord t;
  t.transfer_id = id;
  t.jeditaskid = taskid;
  t.lfn = "f" + std::to_string(id);
  t.dataset = "ds";
  t.proddblock = "blk";
  t.scope = "mc23";
  t.file_size = 1000 + id;
  t.source_site = 1;
  t.destination_site = 2;
  t.activity = dms::Activity::kAnalysisDownload;
  t.started_at = static_cast<util::SimTime>(id * 100);
  t.finished_at = static_cast<util::SimTime>(id * 100 + 50);
  return t;
}

JobRecord basic_job(std::int64_t pandaid, std::int64_t taskid,
                    util::SimTime end) {
  JobRecord j;
  j.pandaid = pandaid;
  j.jeditaskid = taskid;
  j.computing_site = 1;
  j.creation_time = 0;
  j.start_time = end / 2;
  j.end_time = end;
  j.ninputfilebytes = 123;
  return j;
}

TEST(Records, TransferDerivedProperties) {
  TransferRecord t = basic_transfer(1);
  EXPECT_TRUE(t.has_jeditaskid());
  EXPECT_TRUE(t.is_download());
  EXPECT_FALSE(t.is_upload());
  EXPECT_FALSE(t.is_local());
  t.destination_site = 1;
  EXPECT_TRUE(t.is_local());
  t.source_site = grid::kUnknownSite;
  EXPECT_FALSE(t.is_local());  // unknown endpoints are never local
  t.jeditaskid = -1;
  EXPECT_FALSE(t.has_jeditaskid());
  EXPECT_NEAR(basic_transfer(1).throughput_bps(), 1001 / 0.05, 1.0);
}

TEST(Store, CountsAndTaskidTally) {
  MetadataStore store;
  store.record_transfer(basic_transfer(1));
  store.record_transfer(basic_transfer(2, -1));
  store.record_job(basic_job(1, 5, 1000));
  const auto counts = store.counts();
  EXPECT_EQ(counts.jobs, 1u);
  EXPECT_EQ(counts.transfers, 2u);
  EXPECT_EQ(counts.transfers_with_taskid, 1u);
}

TEST(Store, WindowQueries) {
  MetadataStore store;
  store.record_job(basic_job(1, 5, 1000));
  store.record_job(basic_job(2, 5, 5000));
  store.record_transfer(basic_transfer(1));   // starts at 100
  store.record_transfer(basic_transfer(30));  // starts at 3000
  EXPECT_EQ(store.jobs_completed_in(0, 2000),
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(store.jobs_completed_in(0, 10'000).size(), 2u);
  EXPECT_EQ(store.transfers_started_in(0, 1000),
            (std::vector<std::size_t>{0}));
}

TEST(Store, FinalizeTaskBackfillsStatus) {
  MetadataStore store;
  store.record_job(basic_job(1, 5, 1000));
  store.record_job(basic_job(2, 5, 2000));
  store.record_job(basic_job(3, 6, 3000));
  store.finalize_task(5, wms::TaskStatus::kFailed);
  EXPECT_EQ(store.jobs()[0].task_status, wms::TaskStatus::kFailed);
  EXPECT_EQ(store.jobs()[1].task_status, wms::TaskStatus::kFailed);
  EXPECT_EQ(store.jobs()[2].task_status, wms::TaskStatus::kRunning);
  store.finalize_task(999, wms::TaskStatus::kDone);  // unknown: no-op
}

struct RecorderFixture {
  MetadataStore store;
  dms::FileCatalog catalog;
  dms::DatasetId ds;
  dms::FileId file;

  RecorderFixture() {
    ds = catalog.create_dataset("mc23", "recorder.ds");
    file = catalog.add_file(ds, 7'000'000);
  }

  Recorder make(Recorder::Params params = {}) {
    return Recorder(store, catalog, util::Rng(9), params);
  }

  dms::TransferOutcome outcome(dms::Activity activity,
                               std::int64_t pandaid = 11) {
    dms::TransferOutcome o;
    o.transfer_id = 77;
    o.file = file;
    o.size_bytes = 7'000'000;
    o.src = 0;
    o.dst = 1;
    o.activity = activity;
    o.jeditaskid = 5;
    o.pandaid = pandaid;
    o.started_at = 10;
    o.finished_at = 60;
    o.success = true;
    o.replica_registered = true;
    return o;
  }
};

TEST(Recorder, TransferRecordCarriesCatalogNames) {
  RecorderFixture fx;
  Recorder rec = fx.make();
  rec.on_transfer(fx.outcome(dms::Activity::kAnalysisDownload));
  ASSERT_EQ(fx.store.transfers().size(), 1u);
  const TransferRecord& t = fx.store.transfers()[0];
  EXPECT_EQ(t.lfn, fx.catalog.lfn(fx.file));
  EXPECT_EQ(t.dataset, "recorder.ds");
  EXPECT_EQ(t.scope, "mc23");
  EXPECT_EQ(t.file_size, 7'000'000u);
  EXPECT_EQ(t.jeditaskid, 5);
  EXPECT_EQ(t.destination_site, 1u);
}

TEST(Recorder, RegistrationFailureMayUnknownDestination) {
  RecorderFixture fx;
  Recorder::Params params;
  params.p_unknown_dst_on_registration_failure = 1.0;
  Recorder rec = fx.make(params);
  auto o = fx.outcome(dms::Activity::kAnalysisDownload);
  o.replica_registered = false;
  rec.on_transfer(o);
  EXPECT_EQ(fx.store.transfers()[0].destination_site, grid::kUnknownSite);
}

TEST(Recorder, DirectIoPartialReadsAreJobCorrelated) {
  RecorderFixture fx;
  Recorder::Params params;
  params.p_partial_read_job = 0.5;
  Recorder rec = fx.make(params);
  // Record many streams for two jobs; each job's records must be
  // uniformly clean or uniformly partial.
  for (int rep = 0; rep < 5; ++rep) {
    rec.on_transfer(
        fx.outcome(dms::Activity::kAnalysisDownloadDirectIO, 1001));
    rec.on_transfer(
        fx.outcome(dms::Activity::kAnalysisDownloadDirectIO, 1002));
  }
  auto all_clean = [&](std::int64_t, int offset) {
    bool clean = true;
    bool dirty = true;
    for (int rep = 0; rep < 5; ++rep) {
      const auto idx = static_cast<std::size_t>(rep * 2 + offset);
      const bool full = fx.store.transfers()[idx].file_size == 7'000'000u;
      clean &= full;
      dirty &= !full;
    }
    return clean || dirty;  // correlated either way
  };
  EXPECT_TRUE(all_clean(1001, 0));
  EXPECT_TRUE(all_clean(1002, 1));
}

TEST(Recorder, ProductionJobsSkippedByDefault) {
  RecorderFixture fx;
  Recorder rec = fx.make();
  wms::Job job;
  job.pandaid = 1;
  job.jeditaskid = 5;
  job.kind = wms::JobKind::kProduction;
  job.input_files = {fx.file};
  rec.on_job_complete(job);
  EXPECT_TRUE(fx.store.jobs().empty());
  EXPECT_TRUE(fx.store.files().empty());

  job.kind = wms::JobKind::kUserAnalysis;
  rec.on_job_complete(job);
  EXPECT_EQ(fx.store.jobs().size(), 1u);
  EXPECT_EQ(fx.store.files().size(), 1u);
  EXPECT_EQ(fx.store.files()[0].direction, FileDirection::kInput);
}

TEST(Corruption, ChannelsAreCountedAndBounded) {
  MetadataStore store;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    store.record_transfer(basic_transfer(i));
  }
  CorruptionParams params;
  params.p_drop_transfer_taskid = 0.5;
  params.p_unknown_source = 0.0;
  params.p_unknown_destination = 0.0;
  params.p_size_jitter = 0.0;
  params.bad_site_fraction = 0.0;
  params.p_drop_file_record = 0.0;
  params.p_drop_job_record = 0.0;
  const CorruptionReport report =
      inject_corruption(store, params, util::Rng(3));
  EXPECT_NEAR(static_cast<double>(report.transfers_taskid_dropped), 1000.0,
              120.0);
  std::size_t without = 0;
  for (const auto& t : store.transfers()) without += !t.has_jeditaskid();
  EXPECT_EQ(without, report.transfers_taskid_dropped);
}

TEST(Corruption, BadSiteChannelSparesUploads) {
  MetadataStore store;
  for (std::uint64_t i = 0; i < 500; ++i) {
    TransferRecord t = basic_transfer(i);
    // Big files so a relative jitter always changes the integer size.
    t.file_size = 1'000'000'000 + i;
    t.activity = i % 2 == 0 ? dms::Activity::kAnalysisDownload
                            : dms::Activity::kAnalysisUpload;
    store.record_transfer(t);
  }
  CorruptionParams params;
  params.p_drop_transfer_taskid = 0.0;
  params.p_unknown_source = 0.0;
  params.p_unknown_destination = 0.0;
  params.p_size_jitter = 0.0;
  params.bad_site_fraction = 1.0;  // every site is bad
  params.p_size_jitter_bad_site = 1.0;
  params.p_unknown_endpoint_bad_site_tasked = 0.0;
  params.p_unknown_endpoint_bad_site_anonymous = 0.0;
  inject_corruption(store, params, util::Rng(3));
  for (std::size_t i = 0; i < store.transfers().size(); ++i) {
    const TransferRecord& t = store.transfers()[i];
    const std::uint64_t original = 1'000'000'000 + i;
    if (t.is_upload()) {
      EXPECT_EQ(t.file_size, original);  // pilot-recorded, intact
    } else {
      EXPECT_NE(t.file_size, original);  // storage dump, jittered
    }
  }
}

TEST(Corruption, BadSiteFlagIsDeterministic) {
  CorruptionParams params;
  params.bad_site_fraction = 0.5;
  int bad = 0;
  for (grid::SiteId s = 0; s < 200; ++s) {
    EXPECT_EQ(is_bad_metadata_site(params, s),
              is_bad_metadata_site(params, s));
    bad += is_bad_metadata_site(params, s);
  }
  EXPECT_GT(bad, 60);
  EXPECT_LT(bad, 140);
  EXPECT_FALSE(is_bad_metadata_site(params, grid::kUnknownSite));
}

TEST(Corruption, DropChannelsShrinkStores) {
  MetadataStore store;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    FileRecord f;
    f.pandaid = static_cast<std::int64_t>(i);
    f.lfn = "x";
    store.record_file(f);
    store.record_job(basic_job(static_cast<std::int64_t>(i), 5, 100));
  }
  CorruptionParams params{};
  params.p_drop_file_record = 0.3;
  params.p_drop_job_record = 0.3;
  const auto report = inject_corruption(store, params, util::Rng(4));
  EXPECT_EQ(store.files().size(), 1000 - report.file_records_dropped);
  EXPECT_EQ(store.jobs().size(), 1000 - report.job_records_dropped);
  EXPECT_NEAR(static_cast<double>(report.file_records_dropped), 300.0, 80.0);
}

TEST(Query, TransferFiltersCompose) {
  MetadataStore store;
  for (std::uint64_t i = 0; i < 20; ++i) {
    TransferRecord t = basic_transfer(i, i % 2 == 0 ? 5 : -1);
    t.file_size = 1000 * (i + 1);
    t.destination_site = i % 4 == 0 ? 1u : 2u;
    t.source_site = 1;
    t.success = i % 5 != 0;
    t.activity = i < 10 ? dms::Activity::kAnalysisDownload
                        : dms::Activity::kDataRebalance;
    store.record_transfer(t);
  }

  EXPECT_EQ(TransferQuery(store).count(), 20u);
  EXPECT_EQ(TransferQuery(store).with_taskid().count(), 10u);
  EXPECT_EQ(TransferQuery(store)
                .activity(dms::Activity::kAnalysisDownload)
                .count(),
            10u);
  EXPECT_EQ(TransferQuery(store).to_site(1).local().count(), 5u);
  // Composition ANDs: downloads with taskid, successful, to site 2.
  const auto selected = TransferQuery(store)
                            .activity(dms::Activity::kAnalysisDownload)
                            .with_taskid()
                            .successful()
                            .to_site(2)
                            .indices();
  for (std::size_t i : selected) {
    const auto& t = store.transfers()[i];
    EXPECT_TRUE(t.has_jeditaskid());
    EXPECT_TRUE(t.success);
    EXPECT_EQ(t.destination_site, 2u);
  }
  // total_bytes sums only the selection (sizes are 1000..20000; strictly
  // greater than 18000 leaves {19000, 20000}).
  EXPECT_EQ(TransferQuery(store).larger_than(18'000).count(), 2u);
  EXPECT_EQ(TransferQuery(store).larger_than(18'000).total_bytes(),
            20'000u + 19'000u);
}

TEST(Query, TimeWindowsMatchStoreHelpers) {
  MetadataStore store;
  for (std::uint64_t i = 0; i < 50; ++i) {
    store.record_transfer(basic_transfer(i));  // starts at i*100
    store.record_job(
        basic_job(static_cast<std::int64_t>(i), 5,
                  static_cast<util::SimTime>(i * 100 + 10)));
  }
  EXPECT_EQ(TransferQuery(store).started_in(0, 1000).indices(),
            store.transfers_started_in(0, 1000));
  EXPECT_EQ(JobQuery(store).completed_in(0, 1000).indices(),
            store.jobs_completed_in(0, 1000));
}

TEST(Query, JobFiltersAndAggregates) {
  MetadataStore store;
  JobRecord ok = basic_job(1, 5, 1000);
  store.record_job(ok);
  JobRecord bad = basic_job(2, 5, 2000);
  bad.failed = true;
  bad.error_code = 1305;
  bad.computing_site = 3;
  store.record_job(bad);

  EXPECT_EQ(JobQuery(store).failed().count(), 1u);
  EXPECT_EQ(JobQuery(store).failed().with_error(1305).count(), 1u);
  EXPECT_EQ(JobQuery(store).failed().with_error(1099).count(), 0u);
  EXPECT_EQ(JobQuery(store).at_site(3).indices(),
            (std::vector<std::size_t>{1}));
  // Queuing: ok waits 500, bad waits 1000.
  EXPECT_EQ(JobQuery(store).total_queuing_time(), 1500);
  EXPECT_EQ(JobQuery(store).failed().total_queuing_time(), 1000);
}

TEST(Io, RoundTripPreservesRecords) {
  MetadataStore store;
  store.record_job(basic_job(1, 5, 1000));
  JobRecord failed = basic_job(2, 6, 2000);
  failed.failed = true;
  failed.error_code = 1305;
  failed.task_status = wms::TaskStatus::kFailed;
  failed.computing_site = grid::kUnknownSite;
  store.record_job(failed);

  FileRecord f;
  f.pandaid = 1;
  f.jeditaskid = 5;
  f.lfn = "a,b";  // comma forces quoting
  f.dataset = "ds";
  f.proddblock = "blk";
  f.scope = "mc23";
  f.file_size = 42;
  f.direction = FileDirection::kOutput;
  store.record_file(f);

  TransferRecord t = basic_transfer(9);
  t.destination_site = grid::kUnknownSite;
  t.success = false;
  store.record_transfer(t);

  std::stringstream jobs_csv;
  std::stringstream files_csv;
  std::stringstream transfers_csv;
  write_jobs_csv(jobs_csv, store);
  write_files_csv(files_csv, store);
  write_transfers_csv(transfers_csv, store);

  MetadataStore loaded;
  EXPECT_EQ(read_jobs_csv(jobs_csv, loaded), 0u);
  EXPECT_EQ(read_files_csv(files_csv, loaded), 0u);
  EXPECT_EQ(read_transfers_csv(transfers_csv, loaded), 0u);

  ASSERT_EQ(loaded.jobs().size(), 2u);
  EXPECT_EQ(loaded.jobs()[1].pandaid, 2);
  EXPECT_TRUE(loaded.jobs()[1].failed);
  EXPECT_EQ(loaded.jobs()[1].error_code, 1305);
  EXPECT_EQ(loaded.jobs()[1].task_status, wms::TaskStatus::kFailed);
  EXPECT_EQ(loaded.jobs()[1].computing_site, grid::kUnknownSite);

  ASSERT_EQ(loaded.files().size(), 1u);
  EXPECT_EQ(loaded.files()[0].lfn, "a,b");
  EXPECT_EQ(loaded.files()[0].direction, FileDirection::kOutput);

  ASSERT_EQ(loaded.transfers().size(), 1u);
  EXPECT_EQ(loaded.transfers()[0].destination_site, grid::kUnknownSite);
  EXPECT_FALSE(loaded.transfers()[0].success);
  EXPECT_EQ(loaded.transfers()[0].lfn, "f9");
}

TEST(Io, MalformedRowsSkippedNotFatal) {
  std::stringstream bad(
      "pandaid,jeditaskid,computing_site,creation_time,start_time,end_time,"
      "ninputfilebytes,noutputfilebytes,failed,error_code,direct_io,"
      "task_status\n"
      "not,a,valid,row,at,all,x,x,x,x,x,x\n"
      "1,5,2,0,10,20,100,0,0,0,0,1\n");
  MetadataStore store;
  EXPECT_EQ(read_jobs_csv(bad, store), 1u);
  ASSERT_EQ(store.jobs().size(), 1u);
  EXPECT_EQ(store.jobs()[0].pandaid, 1);
}

}  // namespace
}  // namespace pandarus::telemetry
