// Property-based / parameterized tests (TEST_P): invariants that must
// hold across seeds, corruption intensities and topology shapes.
#include <gtest/gtest.h>

#include "analysis/summary.hpp"
#include "core/match_index.hpp"
#include "core/metrics.hpp"
#include "core/relaxed.hpp"
#include "scenario/campaign.hpp"
#include "util/interner.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pandarus {
namespace {

// --- RNG distribution properties over many seeds -------------------------

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMomentsInRange) {
  util::Rng rng(GetParam());
  util::OnlineStats stats;
  for (int i = 0; i < 20'000; ++i) stats.add(rng.next_double());
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  EXPECT_NEAR(stats.stddev(), 0.2887, 0.02);
}

TEST_P(RngSeedSweep, WeightedIndexUnbiasedTwoWay) {
  util::Rng rng(GetParam());
  const double weights[] = {2.0, 1.0};
  int first = 0;
  for (int i = 0; i < 12'000; ++i) first += rng.weighted_index(weights) == 0;
  EXPECT_NEAR(static_cast<double>(first) / 12'000.0, 2.0 / 3.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

// --- interval-union properties ----------------------------------------

class UnionMeasureSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnionMeasureSweep, BoundedBySumAndSpan) {
  util::Rng rng(GetParam());
  std::vector<core::Interval> spans;
  util::SimTime lo = util::kNever;
  util::SimTime hi = 0;
  util::SimDuration total = 0;
  for (int i = 0; i < 40; ++i) {
    const util::SimTime b = rng.uniform_int(0, 10'000);
    const util::SimTime e = b + rng.uniform_int(0, 2'000);
    spans.push_back({b, e});
    lo = std::min(lo, b);
    hi = std::max(hi, e);
    total += e - b;
  }
  const util::SimDuration u = core::union_measure(spans);
  EXPECT_LE(u, total);      // union never exceeds the sum
  EXPECT_LE(u, hi - lo);    // nor the covering span
  EXPECT_GE(u, 0);
  // Adding an interval never shrinks the union.
  auto grown = spans;
  grown.push_back({0, 12'000});
  EXPECT_GE(core::union_measure(grown), u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionMeasureSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

// --- campaign-level properties across seeds ------------------------------

struct CampaignCase {
  std::uint64_t seed;
  double corruption_scale;  // scales every corruption probability
};

class CampaignSweep : public ::testing::TestWithParam<CampaignCase> {
 protected:
  static scenario::ScenarioConfig config_for(const CampaignCase& c) {
    scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
    config.days = 0.25;
    config.seed = c.seed;
    auto& corruption = config.corruption;
    corruption.p_drop_transfer_taskid *= c.corruption_scale;
    corruption.p_unknown_source *= c.corruption_scale;
    corruption.p_unknown_destination *= c.corruption_scale;
    corruption.p_size_jitter *= c.corruption_scale;
    corruption.p_drop_file_record *= c.corruption_scale;
    corruption.p_drop_job_record *= c.corruption_scale;
    corruption.p_size_jitter_bad_site =
        std::min(1.0, corruption.p_size_jitter_bad_site * c.corruption_scale);
    corruption.p_unknown_endpoint_bad_site_tasked = std::min(
        1.0,
        corruption.p_unknown_endpoint_bad_site_tasked * c.corruption_scale);
    corruption.p_unknown_endpoint_bad_site_anonymous = std::min(
        1.0, corruption.p_unknown_endpoint_bad_site_anonymous *
                 c.corruption_scale);
    return config;
  }
};

TEST_P(CampaignSweep, CoreInvariantsHold) {
  const auto result = scenario::run_campaign(config_for(GetParam()));
  const core::Matcher matcher(result.store);
  const core::TriMatchResult tri = core::run_all_methods(matcher);

  // Inclusion ordering across methods.
  EXPECT_LE(tri.exact.matched_job_count(), tri.rm1.matched_job_count());
  EXPECT_LE(tri.rm1.matched_job_count(), tri.rm2.matched_job_count());

  // Matched transfer sets reference valid indices, at most once per job.
  for (const auto& m : tri.rm2.jobs) {
    EXPECT_LT(m.job_index, result.store.jobs().size());
    for (std::size_t k = 1; k < m.transfer_indices.size(); ++k) {
      EXPECT_LT(m.transfer_indices[k - 1], m.transfer_indices[k]);
    }
    for (std::size_t ti : m.transfer_indices) {
      EXPECT_LT(ti, result.store.transfers().size());
    }
    EXPECT_EQ(m.local_transfers + m.remote_transfers,
              m.transfer_indices.size());
  }

  // Metrics are bounded.
  for (const auto& m : tri.exact.jobs) {
    const auto metrics = core::compute_metrics(result.store, m);
    EXPECT_GE(metrics.queuing_time, 0);
    EXPECT_GE(metrics.transfer_time_in_queue, 0);
    EXPECT_LE(metrics.transfer_time_in_queue, metrics.queuing_time);
    EXPECT_LE(metrics.transfer_time_in_wall, metrics.wall_time);
  }

  // Production activities never match (they have no file-table rows).
  const auto breakdown =
      analysis::activity_breakdown(result.store, tri.exact);
  EXPECT_EQ(breakdown
                .rows[static_cast<std::size_t>(
                    dms::Activity::kProductionUpload)]
                .matched,
            0u);
}

TEST_P(CampaignSweep, EnergyConservation) {
  // Bytes recorded as successfully transferred equal the engine's moved
  // bytes, modulo jitter introduced *after* the simulation by the
  // corruption layer (compare against an uncorrupted run).
  scenario::ScenarioConfig config = config_for(GetParam());
  config.apply_corruption = false;
  const auto result = scenario::run_campaign(config);
  std::uint64_t recorded = 0;
  for (const auto& t : result.store.transfers()) {
    if (t.success && t.activity != dms::Activity::kAnalysisDownloadDirectIO) {
      recorded += t.file_size;
    }
  }
  std::uint64_t direct_io = 0;
  for (const auto& t : result.store.transfers()) {
    if (t.success && t.activity == dms::Activity::kAnalysisDownloadDirectIO) {
      direct_io += t.file_size;
    }
  }
  // Direct-IO records bytes *read* (<= moved); everything else exact.
  EXPECT_LE(recorded + direct_io, result.transfers.bytes_moved);
  EXPECT_GE(recorded + direct_io, result.transfers.bytes_moved / 2);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCorruption, CampaignSweep,
    ::testing::Values(CampaignCase{11, 1.0}, CampaignCase{12, 1.0},
                      CampaignCase{13, 0.0}, CampaignCase{14, 2.0},
                      CampaignCase{15, 0.5}));

// --- interner and composite-key properties -----------------------------

class InternerSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// A pool of strings with deliberate near-collisions (shared prefixes,
  /// single-character differences) drawn with repetition.
  static std::vector<std::string> random_strings(util::Rng& rng,
                                                 std::size_t n) {
    std::vector<std::string> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::string s = "lfn." + std::to_string(rng.uniform_int(0, 40));
      if (rng.next_double() < 0.5) s += "." + std::to_string(i % 7);
      out.push_back(std::move(s));
    }
    return out;
  }
};

TEST_P(InternerSweep, IdsAreCollisionFreeAndStable) {
  util::Rng rng(GetParam());
  const auto strings = random_strings(rng, 300);
  util::StringInterner interner;
  std::vector<util::Symbol> first_pass;
  first_pass.reserve(strings.size());
  for (const auto& s : strings) first_pass.push_back(interner.intern(s));

  for (std::size_t i = 0; i < strings.size(); ++i) {
    // Roundtrip and idempotence.
    EXPECT_EQ(interner.view(first_pass[i]), strings[i]);
    EXPECT_EQ(interner.intern(strings[i]), first_pass[i]);
    EXPECT_EQ(interner.find(strings[i]), first_pass[i]);
    // Equal ids exactly for equal strings (no collisions, no splits).
    for (std::size_t j = i + 1; j < strings.size(); ++j) {
      EXPECT_EQ(first_pass[i] == first_pass[j], strings[i] == strings[j]);
    }
  }
}

TEST_P(InternerSweep, StoreSymbolsConsistentAcrossIngestOrder) {
  // Two stores ingest the same file records in opposite orders.  The
  // numeric ids may differ, but each store's symbols must resolve back
  // to the record's strings, and attr_sym equality must coincide with
  // attribute-tuple equality in both.
  util::Rng rng(GetParam());
  const auto lfns = random_strings(rng, 60);
  std::vector<telemetry::FileRecord> records;
  for (std::size_t i = 0; i < lfns.size(); ++i) {
    telemetry::FileRecord f;
    f.pandaid = static_cast<std::int64_t>(i);
    f.jeditaskid = 1;
    f.lfn = lfns[i];
    f.dataset = "ds." + std::to_string(rng.uniform_int(0, 5));
    f.proddblock = "blk." + std::to_string(rng.uniform_int(0, 5));
    f.scope = rng.next_double() < 0.5 ? "mc23" : "data24";
    f.file_size = static_cast<std::uint64_t>(rng.uniform_int(1, 4));
    records.push_back(std::move(f));
  }

  telemetry::MetadataStore forward;
  telemetry::MetadataStore backward;
  for (const auto& f : records) forward.record_file(f);
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    backward.record_file(*it);
  }

  const auto check = [&](const telemetry::MetadataStore& store) {
    const auto files = store.files();
    for (std::size_t i = 0; i < files.size(); ++i) {
      const auto& f = files[i];
      EXPECT_EQ(store.symbols().view(f.lfn_sym), f.lfn);
      EXPECT_EQ(store.symbols().view(f.dataset_sym), f.dataset);
      EXPECT_EQ(store.symbols().view(f.proddblock_sym), f.proddblock);
      EXPECT_EQ(store.symbols().view(f.scope_sym), f.scope);
      for (std::size_t j = i + 1; j < files.size(); ++j) {
        const bool same_tuple = f.dataset == files[j].dataset &&
                                f.proddblock == files[j].proddblock &&
                                f.scope == files[j].scope;
        EXPECT_EQ(f.attr_sym == files[j].attr_sym, same_tuple)
            << f.lfn << " vs " << files[j].lfn;
      }
    }
  };
  check(forward);
  check(backward);
}

TEST_P(InternerSweep, CompositeKeyEquivalentToStringComparison) {
  // The refactor replaced the five-way string/size predicate with one
  // integer compare.  Over randomized records (small pools force heavy
  // overlap in every field), the two must agree on every (file,
  // transfer) pair: old attributes_match(f, t) == (lfn symbols equal &&
  // composite keys equal).
  util::Rng rng(GetParam());
  telemetry::MetadataStore store;
  const auto pick = [&](const char* prefix, int n) {
    return std::string(prefix) + std::to_string(rng.uniform_int(0, n));
  };
  for (int i = 0; i < 120; ++i) {
    telemetry::FileRecord f;
    f.pandaid = i;
    f.jeditaskid = 1;
    f.lfn = pick("lfn.", 8);
    f.dataset = pick("ds.", 3);
    f.proddblock = pick("blk.", 3);
    f.scope = pick("scope.", 2);
    f.file_size = static_cast<std::uint64_t>(rng.uniform_int(1, 3));
    store.record_file(f);
  }
  for (int i = 0; i < 120; ++i) {
    telemetry::TransferRecord t;
    t.transfer_id = static_cast<std::uint64_t>(i);
    t.jeditaskid = 1;
    t.lfn = pick("lfn.", 8);
    t.dataset = pick("ds.", 3);
    t.proddblock = pick("blk.", 3);
    t.scope = pick("scope.", 2);
    t.file_size = static_cast<std::uint64_t>(rng.uniform_int(1, 3));
    store.record_transfer(t);
  }

  const core::MatchIndex index(store);
  const auto files = store.files();
  const auto transfers = store.transfers();
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    for (std::size_t ti = 0; ti < transfers.size(); ++ti) {
      const auto& f = files[fi];
      const auto& t = transfers[ti];
      const bool by_strings = f.lfn == t.lfn && f.dataset == t.dataset &&
                              f.proddblock == t.proddblock &&
                              f.scope == t.scope &&
                              f.file_size == t.file_size;
      const bool by_keys = f.lfn_sym == t.lfn_sym &&
                           index.file_key(fi) == index.transfer_key(ti);
      EXPECT_EQ(by_strings, by_keys) << "file " << fi << " transfer " << ti;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternerSweep,
                         ::testing::Values(3u, 17u, 2026u, 80526u));

// --- corruption monotonicity ------------------------------------------

TEST(CorruptionMonotonicity, MoreCorruptionNeverHelpsExactMatching) {
  scenario::ScenarioConfig clean = scenario::ScenarioConfig::small();
  clean.days = 0.25;
  clean.seed = 4242;
  clean.apply_corruption = false;

  scenario::ScenarioConfig dirty = clean;
  dirty.apply_corruption = true;
  dirty.corruption.p_drop_file_record = 0.4;
  dirty.corruption.p_drop_transfer_taskid = 0.4;

  const auto clean_result = scenario::run_campaign(clean);
  const auto dirty_result = scenario::run_campaign(dirty);

  const core::Matcher clean_matcher(clean_result.store);
  const core::Matcher dirty_matcher(dirty_result.store);
  const auto clean_exact = clean_matcher.run(core::MatchOptions::exact());
  const auto dirty_exact = dirty_matcher.run(core::MatchOptions::exact());
  // Same simulation (corruption is post-hoc), fewer matches after damage.
  EXPECT_LE(dirty_exact.matched_job_count(), clean_exact.matched_job_count());
}

}  // namespace
}  // namespace pandarus
