// Colstore correctness: byte-exact round trips, corrupt-chunk
// rejection, footer-index chunk skipping, NDJSON-vs-colstore replay
// parity on a recorded campaign, and the terminal log_stats event.
#include <cstdint>
#include <cstdio>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/event_source.hpp"
#include "analysis/events_replay.hpp"
#include "core/relaxed.hpp"
#include "obs/colstore.hpp"
#include "obs/event_log.hpp"
#include "scenario/campaign.hpp"
#include "scenario/config.hpp"
#include "util/json.hpp"

namespace pandarus {
namespace {

/// Temp file in the test's working directory, removed on scope exit.
class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  std::fclose(f);
  return out;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Decodes a whole colstore file back to NDJSON text (one line per
/// event, '\n' after each), asserting the scan stayed healthy.
std::string decode_to_ndjson(const std::string& path,
                             obs::ColFilter filter = {}) {
  obs::ColReader reader(path, std::move(filter));
  obs::DecodedEvent event;
  std::string out;
  while (reader.next(event)) {
    obs::append_ndjson(event, out);
    out += '\n';
  }
  EXPECT_TRUE(reader.ok()) << reader.error();
  return out;
}

/// Emits a mixed-shape, escape-heavy random stream; the same generator
/// seeds both sides of every comparison.
void emit_random_events(obs::EventLog& log, int count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::string pool = "abz\"\\\n\t\x01 {}:,é";
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  std::uniform_int_distribution<int> shape(0, 4);
  std::uniform_int_distribution<std::int64_t> big(
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max());
  std::int64_t ts = 0;
  for (int i = 0; i < count; ++i) {
    ts += static_cast<std::int64_t>(rng() % 1000);
    std::string text;
    for (int c = 0; c < 8; ++c) text += pool[pick(rng)];
    switch (shape(rng)) {
      case 0:
        log.emit(obs::Event("transfer_start", ts, i)
                     .field("src", static_cast<std::int64_t>(rng() % 50))
                     .field("dst", static_cast<std::int64_t>(rng() % 50))
                     .field("attempt", std::int64_t{1}));
        break;
      case 1:
        log.emit(obs::Event("file_record", ts, i)
                     .field("lfn", text)
                     .field("size", static_cast<std::int64_t>(rng() % (1u << 30))));
        break;
      case 2:
        log.emit(obs::Event("link_sample", ts, std::int64_t{0})
                     .field("rate_bps", static_cast<double>(rng()) * 1.75e-3)
                     .field("utilization", 1.0 / 3.0));
        break;
      case 3:
        log.emit(obs::Event("odd \"kind\"", ts, std::string_view(text))
                     .field("flag", (rng() & 1) != 0)
                     .field("huge", big(rng))
                     .field("inf", std::numeric_limits<double>::infinity()));
        break;
      default:
        log.emit(obs::Event("bare", ts, -static_cast<std::int64_t>(i)));
        break;
    }
  }
}

TEST(ColstoreTest, RoundTripsRandomEventsByteExact) {
  obs::EventLog log;
  emit_random_events(log, 2000, 42);
  log.close();
  const std::string ndjson = log.to_ndjson();

  TempFile file("colstore_roundtrip.colstore");
  obs::ColWriterOptions options;
  options.rows_per_chunk = 128;  // force many chunks
  ASSERT_TRUE(obs::write_colstore(log, file.path(), options));
  ASSERT_TRUE(obs::is_colstore_file(file.path()));

  EXPECT_EQ(decode_to_ndjson(file.path()), ndjson);

  std::string error;
  const auto stats = obs::colstore_stats(file.path(), &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->events, 2001u);  // + terminal log_stats
  EXPECT_GT(stats->chunks, 10u);
  EXPECT_EQ(stats->kind_counts.at("bare") +
                stats->kind_counts.at("transfer_start") +
                stats->kind_counts.at("file_record") +
                stats->kind_counts.at("link_sample") +
                stats->kind_counts.at("odd \"kind\"") +
                stats->kind_counts.at("log_stats"),
            stats->events);
}

TEST(ColstoreTest, RejectsTruncatedAndCorruptChunks) {
  obs::EventLog log;
  emit_random_events(log, 1500, 7);
  TempFile file("colstore_corrupt.colstore");
  obs::ColWriterOptions options;
  options.rows_per_chunk = 100;
  ASSERT_TRUE(obs::write_colstore(log, file.path(), options));
  const std::string bytes = read_file(file.path());
  ASSERT_GT(bytes.size(), 64u);

  {  // Truncation mid-chunk: rows before the damage still arrive.
    TempFile cut("colstore_truncated.colstore");
    write_file(cut.path(), bytes.substr(0, bytes.size() - 7));
    obs::ColReader reader(cut.path());
    obs::DecodedEvent event;
    std::uint64_t rows = 0;
    while (reader.next(event)) ++rows;
    EXPECT_FALSE(reader.ok());
    EXPECT_FALSE(reader.error().empty());
    EXPECT_GT(rows, 0u);
    EXPECT_LT(rows, 1500u);
  }
  {  // Bit damage in the last chunk's data section: CRC catches it.
    std::string flipped = bytes;
    for (std::size_t i = flipped.size() - 12; i < flipped.size() - 4; ++i) {
      flipped[i] = static_cast<char>(flipped[i] ^ 0x5A);
    }
    TempFile bad("colstore_flipped.colstore");
    write_file(bad.path(), flipped);
    obs::ColReader reader(bad.path());
    obs::DecodedEvent event;
    while (reader.next(event)) {
    }
    EXPECT_FALSE(reader.ok());
    EXPECT_FALSE(reader.error().empty());
  }
  {  // Not a colstore file at all.
    TempFile txt("colstore_not.colstore");
    write_file(txt.path(), "{\"ts\":1}\n");
    EXPECT_FALSE(obs::is_colstore_file(txt.path()));
    obs::ColReader reader(txt.path());
    obs::DecodedEvent event;
    EXPECT_FALSE(reader.next(event));
    EXPECT_FALSE(reader.ok());
  }
}

TEST(ColstoreTest, TimeWindowAndKindFiltersSkipChunksCorrectly) {
  obs::EventLog log;
  std::int64_t ts = 0;
  for (int i = 0; i < 3000; ++i) {
    ts += 10;  // strictly increasing: chunks get disjoint windows
    if (i % 3 == 0) {
      log.emit(obs::Event("alpha", ts, i).field("site", std::int64_t{i % 7}));
    } else {
      log.emit(obs::Event("beta", ts, i).field("site", std::int64_t{i % 5}));
    }
  }
  TempFile file("colstore_skip.colstore");
  obs::ColWriterOptions options;
  options.rows_per_chunk = 200;
  ASSERT_TRUE(obs::write_colstore(log, file.path(), options));

  const std::string full = log.to_ndjson();
  // Brute-force reference from the NDJSON text.
  const auto reference = [&full](auto&& keep) {
    std::string out;
    std::size_t start = 0;
    while (start < full.size()) {
      const std::size_t nl = full.find('\n', start);
      const std::string_view line(full.data() + start, nl - start);
      const auto v = util::json::parse(line);
      if (keep(*v)) {
        out += line;
        out += '\n';
      }
      start = nl + 1;
    }
    return out;
  };

  {  // Time window in the middle of the stream.
    obs::ColFilter filter;
    filter.ts_from = 10'000;
    filter.ts_to = 12'000;
    obs::ColReader reader(file.path(), filter);
    obs::DecodedEvent event;
    std::string got;
    while (reader.next(event)) {
      obs::append_ndjson(event, got);
      got += '\n';
    }
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(got, reference([](const util::json::Value& v) {
                const std::int64_t t = v.get_int("ts");
                return t >= 10'000 && t <= 12'000;
              }));
    EXPECT_GT(reader.stats().chunks_skipped, 0u);
    EXPECT_LT(reader.stats().rows_decoded, 3000u);
  }
  {  // Kind filter: "alpha" rows only, every chunk holds some.
    obs::ColFilter filter;
    filter.kinds = {"alpha"};
    EXPECT_EQ(decode_to_ndjson(file.path(), filter),
              reference([](const util::json::Value& v) {
                return v.get_string("kind") == "alpha";
              }));
  }
  {  // Site filter on decoded rows.
    obs::ColFilter filter;
    filter.site = 3;
    EXPECT_EQ(decode_to_ndjson(file.path(), filter),
              reference([](const util::json::Value& v) {
                return v.get_int("site", -1) == 3;
              }));
  }
  {  // A kind that never occurs skips every chunk.
    obs::ColFilter filter;
    filter.kinds = {"gamma"};
    obs::ColReader reader(file.path(), filter);
    obs::DecodedEvent event;
    EXPECT_FALSE(reader.next(event));
    EXPECT_TRUE(reader.ok());
    EXPECT_EQ(reader.stats().chunks_read, 0u);
    EXPECT_GT(reader.stats().chunks_skipped, 0u);
  }
}

TEST(ColstoreTest, CampaignReplayParityAndCompression) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.days = 0.25;
  config.seed = 20250401;
  obs::EventLog log;
  log.install();
  const auto live = scenario::run_campaign(config);
  log.uninstall();
  log.close();

  TempFile ndjson_file("colstore_campaign.ndjson");
  TempFile col_file("colstore_campaign.colstore");
  ASSERT_TRUE(log.write_ndjson(ndjson_file.path()));
  ASSERT_TRUE(obs::write_colstore(log, col_file.path()));

  // Byte parity: decoding the colstore re-renders the NDJSON exactly.
  EXPECT_EQ(decode_to_ndjson(col_file.path()), log.to_ndjson());

  // Replay parity through the sniffing open_event_source path.
  const auto from_text = analysis::replay_events_file(ndjson_file.path());
  const auto from_col = analysis::replay_events_file(col_file.path());
  ASSERT_GT(from_text.lines_parsed, 0u);
  EXPECT_EQ(from_text.lines_parsed, from_col.lines_parsed);
  EXPECT_EQ(from_text.lines_skipped, from_col.lines_skipped);
  EXPECT_EQ(from_text.kind_counts, from_col.kind_counts);
  EXPECT_EQ(from_text.samples.size(), from_col.samples.size());
  EXPECT_EQ(from_text.flow_events.size(), from_col.flow_events.size());
  EXPECT_TRUE(from_col.log_stats.present);
  EXPECT_EQ(from_col.log_stats.dropped, 0u);

  const auto text_counts = from_text.store.counts();
  const auto col_counts = from_col.store.counts();
  EXPECT_EQ(text_counts.jobs, col_counts.jobs);
  EXPECT_EQ(text_counts.files, col_counts.files);
  EXPECT_EQ(text_counts.transfers, col_counts.transfers);
  EXPECT_EQ(text_counts.jobs, live.store.counts().jobs);

  // The rebuilt stores must match identically under all three methods.
  const core::Matcher text_matcher(from_text.store);
  const core::Matcher col_matcher(from_col.store);
  const auto text_tri = core::run_all_methods(text_matcher);
  const auto col_tri = core::run_all_methods(col_matcher);
  EXPECT_EQ(text_tri.exact.matched_job_count(),
            col_tri.exact.matched_job_count());
  EXPECT_EQ(text_tri.rm1.matched_job_count(),
            col_tri.rm1.matched_job_count());
  EXPECT_EQ(text_tri.rm2.matched_job_count(),
            col_tri.rm2.matched_job_count());
  EXPECT_EQ(text_tri.rm2.matched_transfer_count(),
            col_tri.rm2.matched_transfer_count());

  // Acceptance: the columnar file is at most 35% of the NDJSON bytes.
  const std::string ndjson_bytes = read_file(ndjson_file.path());
  const std::string col_bytes = read_file(col_file.path());
  ASSERT_GT(ndjson_bytes.size(), 0u);
  EXPECT_LE(static_cast<double>(col_bytes.size()),
            0.35 * static_cast<double>(ndjson_bytes.size()))
      << col_bytes.size() << " / " << ndjson_bytes.size();
}

TEST(ColstoreTest, LogStatsReportsTruncation) {
  obs::EventLog log(/*max_events=*/10);
  for (int i = 0; i < 50; ++i) {
    log.emit(obs::Event("tick", i, i));
  }
  log.close();
  log.close();  // idempotent
  EXPECT_EQ(log.event_count(), 11u);  // 10 kept + terminal log_stats
  EXPECT_EQ(log.dropped(), 40u);

  std::istringstream in(log.to_ndjson());
  const auto replay = analysis::replay_events(in);
  EXPECT_TRUE(replay.log_stats.present);
  EXPECT_EQ(replay.log_stats.events, 10u);
  EXPECT_EQ(replay.log_stats.dropped, 40u);
  EXPECT_GT(replay.log_stats.bytes, 0u);
}

TEST(ColstoreTest, NdjsonSourceBoundsLineLength) {
  std::string stream = "{\"ts\":1,\"kind\":\"a\",\"entity\":1}\n";
  stream += std::string(analysis::kMaxNdjsonLine + 100, 'x');  // no newline
  stream += "\n{\"ts\":2,\"kind\":\"b\",\"entity\":2}\n";
  std::istringstream in(stream);
  const auto source = analysis::make_ndjson_source(in);
  std::size_t events = 0;
  while (source->next() != nullptr) ++events;
  EXPECT_EQ(events, 2u);
  EXPECT_EQ(source->skipped(), 1u);
}

}  // namespace
}  // namespace pandarus
