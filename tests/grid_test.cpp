// Unit tests for the grid substrate: sites, links, load model, topology
// container and the WLCG-like generator.
#include <gtest/gtest.h>

#include <cmath>

#include "grid/builder.hpp"
#include "grid/load_model.hpp"
#include "grid/topology.hpp"

namespace pandarus::grid {
namespace {

TEST(Tier, Names) {
  EXPECT_STREQ(tier_name(Tier::kT0), "Tier-0");
  EXPECT_STREQ(tier_name(Tier::kT3), "Tier-3");
}

TEST(LoadModel, UtilizationBounded) {
  LoadModel::Params params;
  params.mean_util = 0.5;
  params.diurnal_amplitude = 0.4;
  params.burst_prob = 0.5;
  params.burst_util = 0.6;
  params.seed = 7;
  LoadModel model(params);
  for (util::SimTime t = 0; t < util::days(2); t += util::minutes(7)) {
    const double u = model.utilization(t);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, params.max_util);
    EXPECT_DOUBLE_EQ(model.available_fraction(t), 1.0 - u);
  }
}

TEST(LoadModel, DeterministicForSameSeed) {
  LoadModel::Params params;
  params.seed = 99;
  LoadModel a(params);
  LoadModel b(params);
  for (util::SimTime t = 0; t < util::hours(30); t += util::minutes(11)) {
    EXPECT_DOUBLE_EQ(a.utilization(t), b.utilization(t));
  }
}

TEST(LoadModel, DiurnalCycleVisible) {
  LoadModel::Params params;
  params.mean_util = 0.4;
  params.diurnal_amplitude = 0.3;
  params.burst_prob = 0.0;  // isolate the sine
  params.phase_hours = 0.0;
  LoadModel model(params);
  // Peak of sin at hour 6, trough at hour 18.
  EXPECT_GT(model.utilization(util::hours(6)),
            model.utilization(util::hours(18)) + 0.4);
}

TEST(LoadModel, BurstsRaiseUtilization) {
  LoadModel::Params calm;
  calm.burst_prob = 0.0;
  LoadModel::Params bursty = calm;
  bursty.burst_prob = 1.0;
  bursty.burst_util = 0.3;
  double diff = 0.0;
  for (util::SimTime t = 0; t < util::hours(10); t += util::minutes(10)) {
    diff += LoadModel(bursty).utilization(t) - LoadModel(calm).utilization(t);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(Topology, AddAndLookupSites) {
  Topology topo;
  Site s;
  s.name = "TEST-T1";
  s.tier = Tier::kT1;
  const SiteId id = topo.add_site(s);
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(topo.site(id).name, "TEST-T1");
  EXPECT_EQ(topo.find_site("TEST-T1"), std::optional<SiteId>{0});
  EXPECT_EQ(topo.find_site("NOPE"), std::nullopt);
  EXPECT_EQ(topo.site_name(kUnknownSite), "UNKNOWN");
}

TEST(Topology, ExplicitLinkPreferred) {
  Topology topo;
  Site s;
  s.name = "A";
  topo.add_site(s);
  s.name = "B";
  topo.add_site(s);
  NetworkLink link;
  link.key = {0, 1};
  link.capacity_bps = 123.0;
  topo.add_link(link);
  EXPECT_TRUE(topo.has_link(0, 1));
  EXPECT_FALSE(topo.has_link(1, 0));
  EXPECT_DOUBLE_EQ(topo.link(0, 1).capacity_bps, 123.0);
}

TEST(Topology, SynthesizedLocalLinkUsesLanParams) {
  Topology topo;
  Site s;
  s.name = "A";
  s.lan_bandwidth_bps = 5e9;
  s.max_parallel_streams = 3;  // pilot limit; frontend floor is 4
  topo.add_site(s);
  const NetworkLink& local = topo.link(0, 0);
  EXPECT_DOUBLE_EQ(local.capacity_bps, 5e9);
  EXPECT_EQ(local.max_active, 4u);

  Site wide;
  wide.name = "B";
  wide.max_parallel_streams = 12;
  topo.add_site(wide);
  EXPECT_EQ(topo.link(1, 1).max_active, 12u);
}

TEST(Topology, SitesOfTierFilters) {
  Topology topo;
  for (Tier tier : {Tier::kT0, Tier::kT1, Tier::kT1, Tier::kT2}) {
    Site s;
    s.name = "s" + std::to_string(topo.site_count());
    s.tier = tier;
    topo.add_site(s);
  }
  EXPECT_EQ(topo.sites_of_tier(Tier::kT1).size(), 2u);
  EXPECT_EQ(topo.sites_of_tier(Tier::kT3).size(), 0u);
}

TEST(Builder, ProducesRequestedShape) {
  TopologyParams params;
  params.n_tier1 = 5;
  params.n_tier2 = 12;
  params.n_tier3 = 3;
  const Topology topo = build_wlcg_like(params);
  EXPECT_EQ(topo.site_count(), 1u + 5 + 12 + 3);
  EXPECT_EQ(topo.sites_of_tier(Tier::kT0).size(), 1u);
  EXPECT_EQ(topo.sites_of_tier(Tier::kT1).size(), 5u);
  EXPECT_EQ(topo.sites_of_tier(Tier::kT2).size(), 12u);
  EXPECT_EQ(topo.sites_of_tier(Tier::kT3).size(), 3u);
  // Full directional link mesh including the diagonal.
  EXPECT_EQ(topo.link_count(), topo.site_count() * topo.site_count());
}

TEST(Builder, DeterministicForSeed) {
  TopologyParams params;
  params.seed = 1234;
  const Topology a = build_wlcg_like(params);
  const Topology b = build_wlcg_like(params);
  ASSERT_EQ(a.site_count(), b.site_count());
  for (SiteId i = 0; i < a.site_count(); ++i) {
    EXPECT_EQ(a.site(i).name, b.site(i).name);
    EXPECT_EQ(a.site(i).cpu_slots, b.site(i).cpu_slots);
    EXPECT_DOUBLE_EQ(a.site(i).lan_bandwidth_bps, b.site(i).lan_bandwidth_bps);
  }
  EXPECT_DOUBLE_EQ(a.link(0, 1).capacity_bps, b.link(0, 1).capacity_bps);
}

TEST(Builder, TierCapacityOrdering) {
  TopologyParams params;
  const Topology topo = build_wlcg_like(params);
  const SiteId t0 = topo.sites_of_tier(Tier::kT0).front();
  // T0 has the most slots and fattest LAN.
  for (const Site& s : topo.sites()) {
    if (s.id == t0) continue;
    EXPECT_GE(topo.site(t0).cpu_slots, s.cpu_slots);
  }
}

TEST(Builder, PathologicalSitesExist) {
  TopologyParams params;
  params.sequential_site_fraction = 0.5;
  params.congested_site_fraction = 0.5;
  const Topology topo = build_wlcg_like(params);
  std::size_t sequential = 0;
  for (const Site& s : topo.sites()) {
    if (s.max_parallel_streams == 1) ++sequential;
  }
  EXPECT_GT(sequential, 0u);
  EXPECT_LT(sequential, topo.site_count());
}

TEST(Builder, AsymmetricDirectionalLinks) {
  TopologyParams params;
  const Topology topo = build_wlcg_like(params);
  // Opposite directions of a pair are independent draws; at least one
  // pair should differ (Fig. 7's asymmetric usage needs this).
  bool any_asymmetric = false;
  for (SiteId i = 1; i < 6 && !any_asymmetric; ++i) {
    for (SiteId j = i + 1; j < 8; ++j) {
      if (std::abs(topo.link(i, j).capacity_bps -
                   topo.link(j, i).capacity_bps) > 1.0) {
        any_asymmetric = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_asymmetric);
}

TEST(Link, EffectiveCapacityReflectsLoad) {
  NetworkLink link;
  link.capacity_bps = 1e9;
  LoadModel::Params load;
  load.mean_util = 0.5;
  load.diurnal_amplitude = 0.0;
  load.burst_prob = 0.0;
  link.load = LoadModel(load);
  EXPECT_NEAR(link.effective_capacity(0), 0.5e9, 1e3);
}

}  // namespace
}  // namespace pandarus::grid
