// obs::serve end-to-end: the embedded HTTP server's protocol corners
// (split reads, oversized heads, pipelining, abrupt closes), the
// StatusServer route table, the Prometheus exposition discipline, the
// analysis /api bodies against post-hoc ground truth, and the
// byte-identity of a campaign's NDJSON stream with a concurrent scraper
// hammering the endpoints (the TSan target).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>

#include <gtest/gtest.h>

#include "analysis/events_replay.hpp"
#include "analysis/serve_endpoints.hpp"
#include "analysis/summary.hpp"
#include "core/exact.hpp"
#include "core/relaxed.hpp"
#include "json_validator.hpp"
#include "obs/event_log.hpp"
#include "obs/flow.hpp"
#include "obs/health.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/process.hpp"
#include "obs/serve.hpp"
#include "promtext_validator.hpp"
#include "scenario/campaign.hpp"
#include "scenario/config.hpp"
#include "util/json.hpp"

namespace pandarus {
namespace {

// --- raw-socket client helpers ---------------------------------------------

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  return fd;
}

bool send_text(int fd, std::string_view text) {
  while (!text.empty()) {
    const ssize_t n = ::send(fd, text.data(), text.size(), MSG_NOSIGNAL);
    if (n < 0) return false;
    text.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::string recv_until_eof(int fd) {
  std::string out;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    out.append(chunk, static_cast<std::size_t>(n));
  }
  return out;
}

/// Reads exactly one keep-alive response (headers + Content-Length body)
/// from `buffer`+socket, consuming it from `buffer`.
std::string recv_one_response(int fd, std::string& buffer) {
  const auto read_more = [&buffer, fd] {
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
    return true;
  };
  std::size_t head_end = std::string::npos;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (!read_more()) return {};
  }
  head_end += 4;
  const std::string head = buffer.substr(0, head_end);
  std::size_t body_len = 0;
  const std::size_t cl = head.find("Content-Length: ");
  if (cl != std::string::npos) {
    body_len = static_cast<std::size_t>(
        std::strtoull(head.c_str() + cl + 16, nullptr, 10));
  }
  while (buffer.size() < head_end + body_len) {
    if (!read_more()) return {};
  }
  const std::string response = buffer.substr(0, head_end + body_len);
  buffer.erase(0, head_end + body_len);
  return response;
}

/// One-shot GET with Connection: close; returns the full response text.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = connect_to(port);
  send_text(fd, "GET " + path +
                    " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
                    "\r\n");
  std::string response = recv_until_eof(fd);
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t head_end = response.find("\r\n\r\n");
  return head_end == std::string::npos ? std::string()
                                       : response.substr(head_end + 4);
}

/// Handler used by the protocol tests: echoes the path.
obs::HttpServer::Options test_options() {
  obs::HttpServer::Options options;
  options.max_request_bytes = 1024;  // small so 431 is cheap to trigger
  return options;
}

obs::HttpResponse echo_handler(const obs::HttpRequest& request) {
  obs::HttpResponse response;
  response.body = "path=" + request.path + "\n";
  return response;
}

// --- HttpServer protocol corners -------------------------------------------

TEST(HttpServer, ServesSplitReads) {
  obs::HttpServer server(echo_handler, test_options());
  ASSERT_TRUE(server.start());
  const int fd = connect_to(server.port());
  // The request head arrives in three pieces with pauses in between.
  for (const std::string_view piece :
       {"GET /hello HT", "TP/1.1\r\nHost: x\r\nConnec",
        "tion: close\r\n\r\n"}) {
    ASSERT_TRUE(send_text(fd, piece));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const std::string response = recv_until_eof(fd);
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(body_of(response), "path=/hello\n");
  server.stop();
}

TEST(HttpServer, OversizedRequestHeadDraws431) {
  obs::HttpServer server(echo_handler, test_options());
  ASSERT_TRUE(server.start());
  const int fd = connect_to(server.port());
  const std::string huge =
      "GET /" + std::string(4096, 'a') + " HTTP/1.1\r\n";
  ASSERT_TRUE(send_text(fd, huge));
  const std::string response = recv_until_eof(fd);
  ::close(fd);
  EXPECT_NE(response.find("431"), std::string::npos);
  server.stop();
}

TEST(HttpServer, PipelinedRequestsEachGetAResponse) {
  obs::HttpServer server(echo_handler, test_options());
  ASSERT_TRUE(server.start());
  const int fd = connect_to(server.port());
  ASSERT_TRUE(send_text(fd,
                        "GET /one HTTP/1.1\r\nHost: x\r\n\r\n"
                        "GET /two HTTP/1.1\r\nHost: x\r\n\r\n"));
  std::string buffer;
  const std::string first = recv_one_response(fd, buffer);
  const std::string second = recv_one_response(fd, buffer);
  ::close(fd);
  EXPECT_EQ(body_of(first), "path=/one\n");
  EXPECT_EQ(body_of(second), "path=/two\n");
  server.stop();
}

TEST(HttpServer, AbruptClientCloseLeavesServerServing) {
  obs::HttpServer server(echo_handler, test_options());
  ASSERT_TRUE(server.start());
  // Half a request, then a hard close.
  const int fd = connect_to(server.port());
  ASSERT_TRUE(send_text(fd, "GET /half HTT"));
  ::close(fd);
  // The server must keep serving new connections.
  const std::string response = http_get(server.port(), "/after");
  EXPECT_EQ(body_of(response), "path=/after\n");
  server.stop();
}

TEST(HttpServer, RejectsNonGetAndGarbage) {
  obs::HttpServer server(echo_handler, test_options());
  ASSERT_TRUE(server.start());
  {
    const int fd = connect_to(server.port());
    send_text(fd, "POST /x HTTP/1.1\r\nHost: x\r\n\r\n");
    const std::string response = recv_until_eof(fd);
    ::close(fd);
    EXPECT_NE(response.find("405"), std::string::npos);
  }
  {
    const int fd = connect_to(server.port());
    send_text(fd, "not an http request at all\r\n\r\n");
    const std::string response = recv_until_eof(fd);
    ::close(fd);
    EXPECT_NE(response.find("400"), std::string::npos);
  }
  server.stop();
}

TEST(HttpServer, HeadOmitsTheBody) {
  obs::HttpServer server(echo_handler, test_options());
  ASSERT_TRUE(server.start());
  const int fd = connect_to(server.port());
  send_text(fd, "HEAD /h HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  const std::string response = recv_until_eof(fd);
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 8"), std::string::npos);
  EXPECT_EQ(body_of(response), "");
  server.stop();
}

// --- StatusServer route table -----------------------------------------------

TEST(StatusServer, HealthzMetricsAndStatusPage) {
  obs::register_process_metrics();
  obs::StatusServer server;
  ASSERT_TRUE(server.start());

  const std::string healthz = body_of(http_get(server.port(), "/healthz"));
  EXPECT_TRUE(testing::JsonValidator(healthz).valid()) << healthz;
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos);

  const std::string metrics = body_of(http_get(server.port(), "/metrics"));
  testing::PromTextValidator prom(metrics);
  EXPECT_TRUE(prom.valid()) << prom.error();
  EXPECT_NE(metrics.find("pandarus_build_info{version=\""),
            std::string::npos);
  EXPECT_NE(metrics.find("pandarus_process_resident_memory_bytes"),
            std::string::npos);

  const std::string page = http_get(server.port(), "/");
  EXPECT_NE(page.find("text/html"), std::string::npos);
  EXPECT_NE(page.find("<html"), std::string::npos);

  const std::string missing = http_get(server.port(), "/api/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_TRUE(testing::JsonValidator(body_of(missing)).valid());
  server.stop();
}

TEST(StatusServer, ExportPrometheusDeclaresEveryFamilyExactlyOnce) {
  // A private registry with every metric kind, including a labelled
  // gauge family with two label sets (one family, two samples).
  obs::Registry registry;
  registry.counter("t_requests_total", "requests").inc(3);
  registry.gauge("t_depth", "queue depth").set(7);
  registry.gauge("t_info{version=\"1\"}", "info").set(1);
  registry.gauge("t_info{version=\"2\"}", "info").set(1);
  registry.histogram("t_latency_ms", {1.0, 10.0}, "latency").observe(4.0);
  const std::string text = export_prometheus(registry.snapshot());
  testing::PromTextValidator prom(text);
  EXPECT_TRUE(prom.valid()) << prom.error() << "\n" << text;
  // Exactly one HELP/TYPE for the two-sample family.
  std::size_t help_count = 0;
  for (std::size_t pos = 0;
       (pos = text.find("# HELP t_info", pos)) != std::string::npos; ++pos) {
    ++help_count;
  }
  EXPECT_EQ(help_count, 1u);
  // Histogram emits the canonical series plus quantile gauge families.
  EXPECT_NE(text.find("t_latency_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE t_latency_ms_p50 gauge"), std::string::npos);
}

TEST(StatusServer, SseStreamDeliversTicks) {
  obs::StatusServer::Options options;
  options.sse_interval_ms = 20;
  obs::StatusServer server(options);
  ASSERT_TRUE(server.start());
  const int fd = connect_to(server.port());
  send_text(fd, "GET /events/stream HTTP/1.1\r\nHost: x\r\n\r\n");
  std::string received;
  char chunk[2048];
  while (received.find("event: tick") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "stream closed before a tick arrived";
    received.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(received.find("retry: 2000"), std::string::npos);
  EXPECT_NE(received.find("text/event-stream"), std::string::npos);
  // The tick payload between "data: " and the frame separator is JSON.
  const std::size_t data = received.find("data: ");
  ASSERT_NE(data, std::string::npos);
  const std::size_t end = received.find('\n', data);
  ASSERT_NE(end, std::string::npos);
  const std::string payload = received.substr(data + 6, end - data - 6);
  EXPECT_TRUE(testing::JsonValidator(payload).valid()) << payload;
  server.stop();
}

// --- live /api bodies vs post-hoc ground truth ------------------------------

TEST(ServeEndpoints, LiveSummaryEqualsPostHocAnalysis) {
  obs::Registry::global().reset_for_test();
  obs::EventLog log;
  log.install();
  obs::FlowTracker tracker;
  tracker.install();
  obs::StatusServer server;
  ASSERT_TRUE(server.start());
  server.install();

  const scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  const scenario::ScenarioResult result = scenario::run_campaign(config);

  // Ground truth: post-hoc replay of the full stream + the matchers.
  std::istringstream stream(log.to_ndjson());
  const analysis::ReplayResult replay = analysis::replay_events(stream);
  const core::Matcher matcher(replay.store);
  const core::TriMatchResult tri = core::run_all_methods(matcher);
  const analysis::OverallSummary expected =
      analysis::overall_summary(replay.store, tri.exact);

  const std::string body = body_of(http_get(server.port(), "/api/summary"));
  ASSERT_TRUE(testing::JsonValidator(body).valid()) << body;
  const auto parsed = util::json::parse(body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_int("jobs"),
            static_cast<std::int64_t>(expected.total_jobs));
  EXPECT_EQ(parsed->get_int("transfers"),
            static_cast<std::int64_t>(expected.total_transfers));
  const util::json::Value* exact = parsed->find("exact");
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->get_int("matched_jobs"),
            static_cast<std::int64_t>(tri.exact.matched_job_count()));
  EXPECT_EQ(exact->get_int("matched_transfers"),
            static_cast<std::int64_t>(tri.exact.matched_transfer_count()));
  const util::json::Value* rm2 = parsed->find("rm2");
  ASSERT_NE(rm2, nullptr);
  EXPECT_EQ(rm2->get_int("matched_jobs"),
            static_cast<std::int64_t>(tri.rm2.matched_job_count()));
  EXPECT_GT(parsed->get_int("jobs"), 0);
  EXPECT_EQ(parsed->get_int("window_end"), result.window_end);

  // Tables and series parse and carry the same watermark.
  const std::string tables = body_of(http_get(server.port(), "/api/tables"));
  ASSERT_TRUE(testing::JsonValidator(tables).valid());
  const std::string series = body_of(http_get(server.port(), "/api/series"));
  ASSERT_TRUE(testing::JsonValidator(series).valid());
  const auto series_parsed = util::json::parse(series);
  ASSERT_TRUE(series_parsed.has_value());
  EXPECT_EQ(series_parsed->get_int("watermark"),
            parsed->get_int("watermark"));

  // Critical path reflects the live tracker's aggregates.
  const std::string critical =
      body_of(http_get(server.port(), "/api/critical-path"));
  ASSERT_TRUE(testing::JsonValidator(critical).valid()) << critical;
  const auto critical_parsed = util::json::parse(critical);
  ASSERT_TRUE(critical_parsed.has_value());
  const obs::FlowTotals totals = tracker.totals();
  EXPECT_EQ(critical_parsed->get_int("flows"),
            static_cast<std::int64_t>(totals.flows));
  const util::json::Value* links = critical_parsed->find("links");
  ASSERT_NE(links, nullptr);
  EXPECT_EQ(links->arr.size(), tracker.link_ranking().size());

  server.uninstall();
  server.stop();
  tracker.uninstall();
  log.uninstall();
}

TEST(ServeEndpoints, ReplayModeServesPrecomputedBodies) {
  obs::Registry::global().reset_for_test();
  obs::EventLog log;
  log.install();
  const scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  std::ignore = scenario::run_campaign(config);
  log.close();
  log.uninstall();

  std::istringstream stream(log.to_ndjson());
  auto replay = std::make_shared<const analysis::ReplayResult>(
      analysis::replay_events(stream));
  ASSERT_GT(replay->lines_parsed, 0u);

  obs::StatusServer server;
  ASSERT_TRUE(server.start());
  analysis::attach_replay_status(server, replay);
  const std::string body = body_of(http_get(server.port(), "/api/summary"));
  ASSERT_TRUE(testing::JsonValidator(body).valid()) << body;
  const auto parsed = util::json::parse(body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->get_bool("closed"));
  EXPECT_GT(parsed->get_int("jobs"), 0);
  EXPECT_EQ(parsed->get_int("watermark"),
            static_cast<std::int64_t>(replay->lines_parsed));
  server.stop();
}

TEST(ServeEndpoints, AlertsEndpointServesLiveEngineState) {
  obs::Registry::global().reset_for_test();
  obs::StatusServer server;
  ASSERT_TRUE(server.start());
  server.install();

  // No engine installed: the endpoint reports itself disabled.
  analysis::attach_live_status(server);
  const std::string disabled = body_of(http_get(server.port(), "/api/alerts"));
  EXPECT_EQ(disabled, "{\"enabled\":false}");

  obs::HealthEngine engine;
  engine.install();
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.days = 0.25;
  config.seed = 20250401;
  config.faults.intensity = 2.0;
  config.with_self_healing();
  std::ignore = scenario::run_campaign(config);

  const std::string body = body_of(http_get(server.port(), "/api/alerts"));
  ASSERT_TRUE(testing::JsonValidator(body).valid()) << body;
  EXPECT_EQ(body, engine.status_json());
  const auto parsed = util::json::parse(body);
  ASSERT_TRUE(parsed.has_value());
  const util::json::Value* counts = parsed->find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_GE(counts->get_int("fired"), 1);

  engine.uninstall();
  server.uninstall();
  server.stop();
}

TEST(ServeEndpoints, ReplayAlertsServePrecomputedDocument) {
  obs::StatusServer server;
  ASSERT_TRUE(server.start());
  auto replay = std::make_shared<const analysis::ReplayResult>();
  auto alerts = std::make_shared<const std::string>(
      "{\"counts\":{\"observations\":0},\"alerts\":[]}");
  analysis::attach_replay_status(server, replay, alerts);
  EXPECT_EQ(body_of(http_get(server.port(), "/api/alerts")), *alerts);
  server.stop();
}

// --- byte identity under concurrent scraping (the TSan test) ----------------

TEST(ServeEndpoints, ScrapedCampaignNdjsonIsByteIdenticalToUnscraped) {
  const scenario::ScenarioConfig config = scenario::ScenarioConfig::small();

  // Baseline: no server, no scrapes.
  std::string baseline;
  {
    obs::Registry::global().reset_for_test();
    obs::EventLog log;
    log.install();
    std::ignore = scenario::run_campaign(config);
    log.uninstall();
    baseline = log.to_ndjson();
  }

  // Same campaign with a status server installed and a client hammering
  // /metrics, /api/summary and /healthz throughout the run.
  std::string scraped;
  {
    obs::Registry::global().reset_for_test();
    obs::EventLog log;
    log.install();
    obs::StatusServer server;
    ASSERT_TRUE(server.start());
    server.install();
    std::atomic<bool> done{false};
    std::thread scraper([&server, &done] {
      while (!done.load(std::memory_order_acquire)) {
        http_get(server.port(), "/metrics");
        http_get(server.port(), "/api/summary");
        http_get(server.port(), "/healthz");
      }
    });
    std::ignore = scenario::run_campaign(config);
    done.store(true, std::memory_order_release);
    scraper.join();
    // One last scrape after the campaign finished (post-harvest path).
    const std::string body =
        body_of(http_get(server.port(), "/api/summary"));
    EXPECT_TRUE(testing::JsonValidator(body).valid());
    server.uninstall();
    server.stop();
    log.uninstall();
    scraped = log.to_ndjson();
  }

  ASSERT_EQ(baseline.size(), scraped.size());
  EXPECT_TRUE(baseline == scraped);
}

// --- EventLog publication / flush knob --------------------------------------

TEST(EventLogServe, PublishAdvancesTheWatermark) {
  obs::EventLog log;
  log.install();
  for (std::int64_t i = 0; i < 10; ++i) {
    log.emit(obs::Event("tick", i, i));
  }
  // Ten lines sit in this thread's staging buffer, below the drain
  // batch: nothing is published yet.
  EXPECT_EQ(log.watermark(), 0u);
  EXPECT_EQ(log.publish(), 10u);
  EXPECT_EQ(log.watermark(), 10u);
  std::string snapshot;
  EXPECT_EQ(log.snapshot_ndjson(snapshot), 10u);
  log.uninstall();
  EXPECT_EQ(snapshot, log.to_ndjson());
}

TEST(EventLogServe, SnapshotStreamsIncrementally) {
  obs::EventLog log;
  log.install();
  log.emit(obs::Event("a", 1, std::int64_t{1}));
  log.publish();
  std::string first;
  const std::uint64_t cursor = log.snapshot_ndjson(first);
  log.emit(obs::Event("b", 2, std::int64_t{2}));
  log.publish();
  std::string second;
  EXPECT_EQ(log.snapshot_ndjson(second, cursor), 2u);
  log.uninstall();
  EXPECT_EQ(first + second, log.to_ndjson());
  EXPECT_NE(second.find("\"b\""), std::string::npos);
  EXPECT_EQ(second.find("\"a\""), std::string::npos);
}

TEST(EventLogServe, UnpublishedForeignBufferStallsTheWatermark) {
  obs::EventLog log;
  log.install();
  // A second thread emits one line and exits without filling its batch:
  // its line is staged, unpublished.
  std::thread other([&log] { log.emit(obs::Event("other", 1, 1)); });
  other.join();
  log.emit(obs::Event("mine", 2, 2));
  log.publish();
  // One of the two seqs is still staged in the (dead) foreign buffer,
  // so the watermark cannot cover both lines.
  EXPECT_LT(log.watermark(), 2u);
  // close() drains every buffer (emitters have quiesced) and the
  // watermark reaches the full stream, stats line included.
  log.close();
  EXPECT_EQ(log.watermark(), 3u);
  std::string all;
  log.snapshot_ndjson(all);
  log.uninstall();
  EXPECT_EQ(all, log.to_ndjson());
}

TEST(EventLogServe, PeriodicFlushWritesPublishedPrefixBeforeClose) {
  const std::string path = ::testing::TempDir() + "serve_flush_test.ndjson";
  obs::EventLog log;
  log.install();
  ASSERT_TRUE(log.start_periodic_flush(path, 10));
  log.emit(obs::Event("early", 1, std::int64_t{1}));
  log.publish();
  // Within a few intervals the published line must be on disk.
  std::string on_disk;
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::ifstream in(path);
    std::stringstream read;
    read << in.rdbuf();
    on_disk = read.str();
    if (!on_disk.empty()) break;
  }
  EXPECT_NE(on_disk.find("\"early\""), std::string::npos);
  log.emit(obs::Event("late", 2, std::int64_t{2}));
  log.close();
  log.stop_periodic_flush();
  log.uninstall();
  std::ifstream in(path);
  std::stringstream read;
  read << in.rdbuf();
  // After the final flush the file holds the complete stream.
  EXPECT_EQ(read.str(), log.to_ndjson());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pandarus
