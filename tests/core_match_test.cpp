// Unit tests for the matching core (Algorithm 1 and RM1/RM2) against
// hand-crafted metadata snapshots where the expected mapping is known.
#include <gtest/gtest.h>

#include <set>

#include "core/exact.hpp"
#include "core/inference.hpp"
#include "core/metrics.hpp"
#include "core/relaxed.hpp"

namespace pandarus::core {
namespace {

using telemetry::FileDirection;
using telemetry::FileRecord;
using telemetry::JobRecord;
using telemetry::MetadataStore;
using telemetry::TransferRecord;

constexpr grid::SiteId kSiteA = 0;
constexpr grid::SiteId kSiteB = 1;
constexpr grid::SiteId kSiteC = 2;

JobRecord make_job(std::int64_t pandaid, std::int64_t taskid,
                   grid::SiteId site, util::SimTime created,
                   util::SimTime start, util::SimTime end,
                   std::uint64_t nin, std::uint64_t nout = 0) {
  JobRecord j;
  j.pandaid = pandaid;
  j.jeditaskid = taskid;
  j.computing_site = site;
  j.creation_time = created;
  j.start_time = start;
  j.end_time = end;
  j.ninputfilebytes = nin;
  j.noutputfilebytes = nout;
  return j;
}

FileRecord make_file(std::int64_t pandaid, std::int64_t taskid,
                     const std::string& lfn, std::uint64_t size,
                     FileDirection dir = FileDirection::kInput) {
  FileRecord f;
  f.pandaid = pandaid;
  f.jeditaskid = taskid;
  f.lfn = lfn;
  f.dataset = "ds." + lfn;
  f.proddblock = "blk." + lfn;
  f.scope = "mc23";
  f.file_size = size;
  f.direction = dir;
  return f;
}

TransferRecord make_transfer(std::uint64_t id, std::int64_t taskid,
                             const std::string& lfn, std::uint64_t size,
                             grid::SiteId src, grid::SiteId dst,
                             dms::Activity activity, util::SimTime t0,
                             util::SimTime t1) {
  TransferRecord t;
  t.transfer_id = id;
  t.jeditaskid = taskid;
  t.lfn = lfn;
  t.dataset = "ds." + lfn;
  t.proddblock = "blk." + lfn;
  t.scope = "mc23";
  t.file_size = size;
  t.source_site = src;
  t.destination_site = dst;
  t.activity = activity;
  t.started_at = t0;
  t.finished_at = t1;
  t.success = true;
  return t;
}

/// One job, fully staged by two downloads whose sizes sum exactly to
/// ninputfilebytes: the canonical exact match.
MetadataStore canonical_store() {
  MetadataStore store;
  store.record_job(make_job(1, 100, kSiteA, 0, 1000, 2000, 300));
  store.record_file(make_file(1, 100, "f1", 100));
  store.record_file(make_file(1, 100, "f2", 200));
  store.record_transfer(make_transfer(10, 100, "f1", 100, kSiteB, kSiteA,
                                      dms::Activity::kAnalysisDownload, 100,
                                      200));
  store.record_transfer(make_transfer(11, 100, "f2", 200, kSiteA, kSiteA,
                                      dms::Activity::kAnalysisDownload, 200,
                                      400));
  return store;
}

TEST(ExactMatch, CanonicalFullStagingMatches) {
  MetadataStore store = canonical_store();
  Matcher matcher(store);
  MatchedJob m = matcher.match_job(0, MatchOptions::exact());
  ASSERT_TRUE(m.matched());
  EXPECT_EQ(m.transfer_indices, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(m.remote_transfers, 1u);  // B->A
  EXPECT_EQ(m.local_transfers, 1u);   // A->A
  EXPECT_EQ(m.locality(), LocalityClass::kMixed);
}

TEST(ExactMatch, SizeSumGateRejectsPartialStaging) {
  MetadataStore store;
  store.record_job(make_job(1, 100, kSiteA, 0, 1000, 2000, 300));
  store.record_file(make_file(1, 100, "f1", 100));
  store.record_file(make_file(1, 100, "f2", 200));
  // Only f1 was transferred: S = 100 != 300 and != 0.
  store.record_transfer(make_transfer(10, 100, "f1", 100, kSiteB, kSiteA,
                                      dms::Activity::kAnalysisDownload, 100,
                                      200));
  Matcher matcher(store);
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::exact()).matched());
  // RM1 drops the gate and recovers it (paper §4.3, case 1).
  MatchedJob rm1 = matcher.match_job(0, MatchOptions::rm1());
  ASSERT_TRUE(rm1.matched());
  EXPECT_EQ(rm1.transfer_indices.size(), 1u);
}

TEST(ExactMatch, OutputSumAlsoSatisfiesGate) {
  MetadataStore store;
  store.record_job(make_job(1, 100, kSiteA, 0, 1000, 2000, 999, 500));
  store.record_file(make_file(1, 100, "out1", 500, FileDirection::kOutput));
  store.record_transfer(make_transfer(10, 100, "out1", 500, kSiteA, kSiteB,
                                      dms::Activity::kAnalysisUpload, 1900,
                                      1950));
  Matcher matcher(store);
  MatchedJob m = matcher.match_job(0, MatchOptions::exact());
  ASSERT_TRUE(m.matched());
  EXPECT_EQ(m.remote_transfers, 1u);
}

TEST(ExactMatch, SizeJitterBreaksAttributeMatch) {
  MetadataStore store = canonical_store();
  store.transfers_mutable()[0].file_size = 101;  // one byte off
  Matcher matcher(store);
  // f1's transfer no longer attribute-matches; sum = 200 != 300, so the
  // exact gate fails; RM1 still matches f2's local transfer.
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::exact()).matched());
  MatchedJob rm1 = matcher.match_job(0, MatchOptions::rm1());
  ASSERT_TRUE(rm1.matched());
  EXPECT_EQ(rm1.transfer_indices, (std::vector<std::size_t>{1}));
}

TEST(ExactMatch, TransferAfterJobEndExcluded) {
  MetadataStore store = canonical_store();
  store.transfers_mutable()[1].started_at = 2500;  // after end_time 2000
  Matcher matcher(store);
  // Candidate set = {f1}: S = 100 != 300 -> exact fails.
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::exact()).matched());
  // RM1 keeps the remaining time-valid candidate.
  EXPECT_EQ(matcher.match_job(0, MatchOptions::rm1()).transfer_indices.size(),
            1u);
}

TEST(ExactMatch, DownloadToWrongSiteFailsSiteCheck) {
  MetadataStore store = canonical_store();
  store.transfers_mutable()[0].destination_site = kSiteC;
  store.transfers_mutable()[1].destination_site = kSiteC;
  Matcher matcher(store);
  // Gate passes (sizes intact) but no transfer satisfies the site
  // condition, so the matched set is empty under every method except
  // none (RM2 does not help: sites are known-but-different).
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::exact()).matched());
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::rm1()).matched());
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::rm2()).matched());
}

TEST(ExactMatch, UploadChecksSourceSite) {
  MetadataStore store;
  store.record_job(make_job(1, 100, kSiteA, 0, 1000, 2000, 0, 500));
  store.record_file(make_file(1, 100, "out1", 500, FileDirection::kOutput));
  store.record_transfer(make_transfer(10, 100, "out1", 500, kSiteB, kSiteC,
                                      dms::Activity::kAnalysisUpload, 1900,
                                      1950));
  Matcher matcher(store);
  // Upload's source (B) is not the computing site (A).
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::exact()).matched());
}

TEST(Rm2, RecoversUnknownDestinationDownload) {
  MetadataStore store = canonical_store();
  store.transfers_mutable()[0].destination_site = grid::kUnknownSite;
  Matcher matcher(store);
  // Exact: gate passes (S = 300) but only f2 passes the site check.
  MatchedJob exact = matcher.match_job(0, MatchOptions::exact());
  EXPECT_EQ(exact.transfer_indices, (std::vector<std::size_t>{1}));
  // RM2 additionally admits the UNKNOWN-destination transfer.
  MatchedJob rm2 = matcher.match_job(0, MatchOptions::rm2());
  EXPECT_EQ(rm2.transfer_indices, (std::vector<std::size_t>{0, 1}));
  // The unknown-endpoint transfer counts as remote.
  EXPECT_EQ(rm2.remote_transfers, 1u);
}

TEST(Rm2, RecoversUnknownSourceUpload) {
  MetadataStore store;
  store.record_job(make_job(1, 100, kSiteA, 0, 1000, 2000, 0, 500));
  store.record_file(make_file(1, 100, "out1", 500, FileDirection::kOutput));
  store.record_transfer(make_transfer(10, 100, "out1", 500,
                                      grid::kUnknownSite, kSiteB,
                                      dms::Activity::kAnalysisUpload, 1900,
                                      1950));
  Matcher matcher(store);
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::rm1()).matched());
  EXPECT_TRUE(matcher.match_job(0, MatchOptions::rm2()).matched());
}

TEST(Match, TaskIdMismatchExcludesCandidate) {
  MetadataStore store = canonical_store();
  store.transfers_mutable()[0].jeditaskid = 999;
  Matcher matcher(store);
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::exact()).matched());
  // With the taskid requirement relaxed the candidate returns.
  MatchOptions loose = MatchOptions::exact();
  loose.require_taskid_match = false;
  EXPECT_TRUE(matcher.match_job(0, loose).matched());
}

TEST(Match, DroppedTaskIdExcludesCandidate) {
  MetadataStore store = canonical_store();
  store.transfers_mutable()[1].jeditaskid = -1;  // corruption channel
  Matcher matcher(store);
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::exact()).matched());
}

TEST(Match, MissingFileRecordsMeanNoMatch) {
  MetadataStore store;
  store.record_job(make_job(1, 100, kSiteA, 0, 1000, 2000, 300));
  store.record_transfer(make_transfer(10, 100, "f1", 300, kSiteA, kSiteA,
                                      dms::Activity::kAnalysisDownload, 100,
                                      200));
  Matcher matcher(store);
  // No file rows bridge the job to the transfer.
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::rm2()).matched());
}

TEST(Match, StaleFileRowWithWrongTaskIdIgnored) {
  MetadataStore store = canonical_store();
  store.files_mutable()[0].jeditaskid = 777;  // stale row
  Matcher matcher(store);
  // Only f2's row bridges; S = 200 != 300 -> exact fails, RM1 matches f2.
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::exact()).matched());
  EXPECT_EQ(matcher.match_job(0, MatchOptions::rm1()).transfer_indices,
            (std::vector<std::size_t>{1}));
}

TEST(Match, DuplicateTransferSetBreaksGateOnly) {
  // The Fig. 12 pattern: the same files transferred twice (pre-placement
  // with UNKNOWN destination + job-triggered staging).
  MetadataStore store = canonical_store();
  store.record_transfer(make_transfer(12, 100, "f1", 100, kSiteB,
                                      grid::kUnknownSite,
                                      dms::Activity::kAnalysisDownload, -500,
                                      -400));
  store.record_transfer(make_transfer(13, 100, "f2", 200, kSiteB,
                                      grid::kUnknownSite,
                                      dms::Activity::kAnalysisDownload, -400,
                                      -300));
  Matcher matcher(store);
  // S over all candidates = 600 != 300 -> exact rejects the whole job.
  EXPECT_FALSE(matcher.match_job(0, MatchOptions::exact()).matched());
  // RM1 keeps the correctly-recorded set.
  EXPECT_EQ(matcher.match_job(0, MatchOptions::rm1()).transfer_indices.size(),
            2u);
  // RM2 surfaces all four - the duplicate is now visible.
  MatchedJob rm2 = matcher.match_job(0, MatchOptions::rm2());
  EXPECT_EQ(rm2.transfer_indices.size(), 4u);
}

TEST(Match, RunCollectsOnlyMatchedJobs) {
  MetadataStore store = canonical_store();
  store.record_job(make_job(2, 101, kSiteB, 0, 500, 900, 50));  // no files
  Matcher matcher(store);
  MatchResult result = matcher.run(MatchOptions::exact());
  EXPECT_EQ(result.jobs_considered, 2u);
  ASSERT_EQ(result.matched_job_count(), 1u);
  EXPECT_EQ(result.jobs[0].job_index, 0u);
  EXPECT_EQ(result.matched_transfer_count(), 2u);
}

TEST(Match, MethodInclusionInvariant) {
  // For any snapshot: exact set is a subset of RM1's, RM1's of RM2's.
  MetadataStore store = canonical_store();
  store.record_transfer(make_transfer(12, 100, "f1", 100, kSiteB,
                                      grid::kUnknownSite,
                                      dms::Activity::kAnalysisDownload, 50,
                                      80));
  Matcher matcher(store);
  const TriMatchResult tri = run_all_methods(matcher);
  auto set_of = [](const MatchResult& r, std::size_t job) {
    for (const auto& m : r.jobs) {
      if (m.job_index == job) return m.transfer_indices;
    }
    return std::vector<std::size_t>{};
  };
  const auto exact = set_of(tri.exact, 0);
  const auto rm1 = set_of(tri.rm1, 0);
  const auto rm2 = set_of(tri.rm2, 0);
  EXPECT_TRUE(std::includes(rm1.begin(), rm1.end(), exact.begin(),
                            exact.end()));
  EXPECT_TRUE(std::includes(rm2.begin(), rm2.end(), rm1.begin(), rm1.end()));
}

// --- diagnostics ---------------------------------------------------------

TEST(Diagnosis, ReportsEveryTerminalStage) {
  // Matched.
  {
    MetadataStore store = canonical_store();
    Matcher matcher(store);
    const MatchDiagnosis d = matcher.diagnose_job(0, MatchOptions::exact());
    EXPECT_EQ(d.outcome, MatchOutcome::kMatched);
    EXPECT_EQ(d.file_rows, 2u);
    EXPECT_EQ(d.candidates, 2u);
    EXPECT_EQ(d.candidate_sum, 300u);
    EXPECT_EQ(d.site_passing, 2u);
  }
  // No file rows.
  {
    MetadataStore store = canonical_store();
    store.files_mutable().clear();
    Matcher matcher(store);
    EXPECT_EQ(matcher.diagnose_job(0, MatchOptions::exact()).outcome,
              MatchOutcome::kNoFileRows);
  }
  // No candidates (sizes jittered away).
  {
    MetadataStore store = canonical_store();
    store.transfers_mutable()[0].file_size = 1;
    store.transfers_mutable()[1].file_size = 1;
    Matcher matcher(store);
    const MatchDiagnosis d = matcher.diagnose_job(0, MatchOptions::exact());
    EXPECT_EQ(d.outcome, MatchOutcome::kNoCandidates);
    EXPECT_EQ(d.file_rows, 2u);
  }
  // Size gate.
  {
    MetadataStore store = canonical_store();
    store.jobs_mutable()[0].ninputfilebytes = 999;
    Matcher matcher(store);
    const MatchDiagnosis d = matcher.diagnose_job(0, MatchOptions::exact());
    EXPECT_EQ(d.outcome, MatchOutcome::kSizeGateFailed);
    EXPECT_EQ(d.candidate_sum, 300u);
    // RM1 skips the gate and matches.
    EXPECT_EQ(matcher.diagnose_job(0, MatchOptions::rm1()).outcome,
              MatchOutcome::kMatched);
  }
  // Site check eliminates everything.
  {
    MetadataStore store = canonical_store();
    store.transfers_mutable()[0].destination_site = kSiteC;
    store.transfers_mutable()[1].destination_site = kSiteC;
    Matcher matcher(store);
    const MatchDiagnosis d = matcher.diagnose_job(0, MatchOptions::exact());
    EXPECT_EQ(d.outcome, MatchOutcome::kSiteCheckEliminatedAll);
    EXPECT_EQ(d.site_passing, 0u);
  }
}

TEST(Diagnosis, OutcomeConsistentWithMatchJob) {
  MetadataStore store = canonical_store();
  store.record_job(make_job(2, 101, kSiteB, 0, 500, 900, 50));
  Matcher matcher(store);
  for (std::size_t i = 0; i < store.jobs().size(); ++i) {
    for (const auto options :
         {MatchOptions::exact(), MatchOptions::rm1(), MatchOptions::rm2()}) {
      const bool matched = matcher.match_job(i, options).matched();
      const MatchDiagnosis d = matcher.diagnose_job(i, options);
      EXPECT_EQ(matched, d.outcome == MatchOutcome::kMatched);
    }
  }
}

TEST(Diagnosis, NamesDistinct) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kMatchOutcomeCount; ++i) {
    names.insert(match_outcome_name(static_cast<MatchOutcome>(i)));
  }
  EXPECT_EQ(names.size(), kMatchOutcomeCount);
}

// --- metrics ---------------------------------------------------------------

TEST(Metrics, UnionMeasureMergesOverlaps) {
  EXPECT_EQ(union_measure({{0, 10}, {5, 15}}), 15);
  EXPECT_EQ(union_measure({{0, 10}, {20, 30}}), 20);
  EXPECT_EQ(union_measure({{0, 10}, {10, 20}}), 20);  // touching
  EXPECT_EQ(union_measure({}), 0);
  EXPECT_EQ(union_measure({{5, 5}, {7, 3}}), 0);  // empty/inverted
  EXPECT_EQ(union_measure({{20, 30}, {0, 10}, {5, 25}}), 30);
}

TEST(Metrics, TransferTimeClippedToQueuePhase) {
  MetadataStore store = canonical_store();
  // Job: created 0, start 1000, end 2000.  Transfers [100,200], [200,400].
  Matcher matcher(store);
  MatchedJob m = matcher.match_job(0, MatchOptions::exact());
  const JobTransferMetrics metrics = compute_metrics(store, m);
  EXPECT_EQ(metrics.queuing_time, 1000);
  EXPECT_EQ(metrics.transfer_time_in_queue, 300);  // union [100,400)
  EXPECT_EQ(metrics.transfer_time_in_wall, 0);
  EXPECT_FALSE(metrics.transfer_spans_execution);
  EXPECT_NEAR(metrics.queue_fraction(), 0.3, 1e-12);
  EXPECT_EQ(metrics.transferred_bytes, 300u);
}

TEST(Metrics, SpanningTransferDetected) {
  MetadataStore store;
  store.record_job(make_job(1, 100, kSiteA, 0, 1000, 4000, 100));
  store.record_file(make_file(1, 100, "f1", 100));
  // Transfer crosses the start time: the Fig. 11 anomaly.
  store.record_transfer(make_transfer(10, 100, "f1", 100, kSiteA, kSiteA,
                                      dms::Activity::kAnalysisDownload, 500,
                                      3000));
  Matcher matcher(store);
  MatchedJob m = matcher.match_job(0, MatchOptions::exact());
  ASSERT_TRUE(m.matched());
  const JobTransferMetrics metrics = compute_metrics(store, m);
  EXPECT_TRUE(metrics.transfer_spans_execution);
  EXPECT_EQ(metrics.transfer_time_in_queue, 500);
  EXPECT_EQ(metrics.transfer_time_in_wall, 2000);
}

// --- inference / redundancy --------------------------------------------

TEST(Inference, UnknownDestinationRecoveredBySizePairing) {
  MetadataStore store = canonical_store();
  store.record_transfer(make_transfer(12, 100, "f1", 100, kSiteB,
                                      grid::kUnknownSite,
                                      dms::Activity::kAnalysisDownload, -500,
                                      -400));
  Matcher matcher(store);
  MatchedJob m = matcher.match_job(0, MatchOptions::rm2());
  ASSERT_EQ(m.transfer_indices.size(), 3u);
  const auto inferred = infer_unknown_sites(store, m);
  ASSERT_EQ(inferred.size(), 1u);
  EXPECT_EQ(inferred[0].transfer_index, 2u);
  EXPECT_EQ(inferred[0].inferred_destination, kSiteA);
}

TEST(Inference, RedundantGroupsFoundAfterInference) {
  MetadataStore store = canonical_store();
  store.record_transfer(make_transfer(12, 100, "f1", 100, kSiteB,
                                      grid::kUnknownSite,
                                      dms::Activity::kAnalysisDownload, -500,
                                      -400));
  Matcher matcher(store);
  MatchedJob m = matcher.match_job(0, MatchOptions::rm2());
  const auto groups = find_redundant_transfers(store, m);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].lfn, "f1");
  EXPECT_EQ(groups[0].destination, kSiteA);
  EXPECT_EQ(groups[0].transfer_indices.size(), 2u);
  EXPECT_EQ(groups[0].wasted_bytes(), 100u);
}

TEST(Inference, NoEvidenceMeansNoInference) {
  MetadataStore store;
  store.record_job(make_job(1, 100, kSiteA, 0, 1000, 2000, 100));
  store.record_file(make_file(1, 100, "f1", 100));
  store.record_transfer(make_transfer(10, 100, "f1", 100, kSiteB,
                                      grid::kUnknownSite,
                                      dms::Activity::kAnalysisDownload, 100,
                                      200));
  Matcher matcher(store);
  MatchedJob m = matcher.match_job(0, MatchOptions::rm2());
  ASSERT_TRUE(m.matched());
  EXPECT_TRUE(infer_unknown_sites(store, m).empty());
}

TEST(Inference, GlobalRedundancyScan) {
  MetadataStore store;
  for (std::uint64_t i = 0; i < 3; ++i) {
    store.record_transfer(make_transfer(i, -1, "dup", 500, kSiteB, kSiteA,
                                        dms::Activity::kDataRebalance,
                                        static_cast<util::SimTime>(i * 100),
                                        static_cast<util::SimTime>(i * 100 + 50)));
  }
  store.record_transfer(make_transfer(9, -1, "uniq", 700, kSiteB, kSiteC,
                                      dms::Activity::kDataRebalance, 0, 10));
  const GlobalRedundancy g = scan_global_redundancy(store);
  EXPECT_EQ(g.groups, 1u);
  EXPECT_EQ(g.redundant_transfers, 2u);
  EXPECT_EQ(g.wasted_bytes, 1000u);
}

}  // namespace
}  // namespace pandarus::core
