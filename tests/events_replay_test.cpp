// Event-log and replay tests: NDJSON round-trip (multi-threaded emit,
// overflow), sampler/event-stream determinism (a traced run must produce
// byte-identical NDJSON to an untraced one), and the replay cross-check
// (analyses on an events-rebuilt store must equal the in-memory ones).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/bandwidth.hpp"
#include "analysis/breakdown.hpp"
#include "analysis/casestudy.hpp"
#include "analysis/critical_path.hpp"
#include "analysis/events_replay.hpp"
#include "analysis/summary.hpp"
#include "core/parallel_driver.hpp"
#include "core/relaxed.hpp"
#include "json_validator.hpp"
#include "obs/event_log.hpp"
#include "obs/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "scenario/campaign.hpp"
#include "telemetry/io.hpp"
#include "util/json.hpp"

namespace {

using namespace pandarus;
using JsonValidator = pandarus::testing::JsonValidator;

std::vector<std::string> split_lines(const std::string& ndjson) {
  std::vector<std::string> lines;
  std::istringstream in(ndjson);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// --- round trip -------------------------------------------------------------

TEST(EventLog, RoundTripsThroughJsonParser) {
  obs::EventLog log;
  log.install();
  obs::EventLog::installed()->emit(
      obs::Event("unit", 1234, std::int64_t{42})
          .field("count", std::uint64_t{7})
          .field("ratio", 0.25)
          .field("ok", true)
          .field("name", "alpha \"quoted\"\n\ttab")
          .field("big", std::int64_t{1} << 60));
  log.uninstall();

  ASSERT_EQ(log.event_count(), 1u);
  const auto lines = split_lines(log.to_ndjson());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(JsonValidator(lines[0]).valid()) << lines[0];

  const auto value = util::json::parse(lines[0]);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->get_string("kind"), "unit");
  EXPECT_EQ(value->get_int("ts"), 1234);
  EXPECT_EQ(value->get_int("entity"), 42);
  EXPECT_EQ(value->get_int("count"), 7);
  EXPECT_DOUBLE_EQ(value->get_double("ratio"), 0.25);
  EXPECT_TRUE(value->get_bool("ok"));
  EXPECT_EQ(value->get_string("name"), "alpha \"quoted\"\n\ttab");
  // SimTime-scale integers must round-trip losslessly (past double's
  // 2^53 mantissa).
  EXPECT_EQ(value->get_int("big"), std::int64_t{1} << 60);
}

TEST(EventLog, MultiThreadedEmitKeepsEveryLineWellFormed) {
  obs::EventLog log;
  log.install();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;  // crosses the drain-batch boundary
  {
    parallel::ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kThreads; ++t) {
      futures.push_back(pool.submit([t] {
        for (int i = 0; i < kPerThread; ++i) {
          obs::EventLog::installed()->emit(
              obs::Event("mt", i, std::int64_t{t}).field("i", std::int64_t{i}));
        }
      }));
    }
    for (auto& f : futures) f.get();
    pool.wait_idle();
  }
  log.uninstall();

  EXPECT_EQ(log.event_count(), std::size_t{kThreads} * kPerThread);
  EXPECT_EQ(log.dropped(), 0u);
  const auto lines = split_lines(log.to_ndjson());
  ASSERT_EQ(lines.size(), std::size_t{kThreads} * kPerThread);
  for (const std::string& line : lines) {
    ASSERT_TRUE(JsonValidator(line).valid()) << line;
  }
}

TEST(EventLog, OverflowDropsCountedAndStreamStaysValid) {
  obs::EventLog log(/*max_events=*/8);
  log.install();
  for (int i = 0; i < 20; ++i) {
    obs::EventLog::installed()->emit(obs::Event("tiny", i, std::int64_t{i}));
  }
  log.uninstall();
  EXPECT_EQ(log.event_count(), 8u);
  EXPECT_EQ(log.dropped(), 12u);
  for (const std::string& line : split_lines(log.to_ndjson())) {
    EXPECT_TRUE(JsonValidator(line).valid()) << line;
  }
}

TEST(EventLog, DisabledMeansNoRecording) {
  ASSERT_EQ(obs::EventLog::installed(), nullptr);
  obs::EventLog log;
  EXPECT_EQ(log.event_count(), 0u);
  EXPECT_EQ(log.to_ndjson(), "");
}

// --- sampler ----------------------------------------------------------------

TEST(Sampler, ColumnsAndEmittedRowsAgree)
{
  obs::EventLog log;
  log.install();
  obs::Sampler sampler(1000);
  std::int64_t tick = 0;
  sampler.add_column("tick", [&tick] { return tick; });
  sampler.add_column("twice", [&tick] { return 2 * tick; });
  for (tick = 1; tick <= 3; ++tick) sampler.sample_at(tick * 1000);
  log.uninstall();

  ASSERT_EQ(sampler.rows().size(), 3u);
  EXPECT_EQ(sampler.columns(), (std::vector<std::string>{"tick", "twice"}));
  EXPECT_EQ(sampler.rows()[2].ts, 3000);
  EXPECT_EQ(sampler.rows()[2].values, (std::vector<std::int64_t>{3, 6}));

  const auto lines = split_lines(log.to_ndjson());
  ASSERT_EQ(lines.size(), 3u);
  const auto value = util::json::parse(lines[1]);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->get_string("kind"), "sample");
  EXPECT_EQ(value->get_int("ts"), 2000);
  EXPECT_EQ(value->get_int("entity"), 1);  // tick index
  EXPECT_EQ(value->get_int("tick"), 2);
  EXPECT_EQ(value->get_int("twice"), 4);
}

// --- determinism ------------------------------------------------------------

// A wall-clock-traced run must emit byte-identical NDJSON to an
// untraced one: events carry simulated time only, probes are read-only,
// and the ParallelMatchDriver post-pass must not perturb the stream.
TEST(EventsDeterminism, TracedAndUntracedRunsEmitIdenticalNdjson) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.days = 0.5;
  config.seed = 20250401;

  const auto run_once = [&config](bool traced) {
    // The sampler snapshots global registry counters; zero them so the
    // second run starts from the same baseline as the first.
    obs::Registry::global().reset_for_test();
    obs::TraceRecorder recorder;
    if (traced) recorder.install();
    obs::EventLog log;
    log.install();
    const scenario::ScenarioResult result = scenario::run_campaign(config);
    parallel::ThreadPool pool(4);
    const core::Matcher matcher(result.store, pool);
    const core::MatchResult exact =
        core::ParallelMatchDriver(matcher, pool).run(core::MatchOptions::exact());
    log.uninstall();
    if (traced) recorder.uninstall();
    return std::tuple{log.to_ndjson(), exact.matched_job_count()};
  };

  const auto [plain_ndjson, plain_matched] = run_once(false);
  const auto [traced_ndjson, traced_matched] = run_once(true);

  EXPECT_GT(plain_ndjson.size(), 0u);
  EXPECT_EQ(plain_matched, traced_matched);
  EXPECT_EQ(plain_ndjson, traced_ndjson);
}

// --- replay cross-check -----------------------------------------------------

TEST(EventsReplay, ReplayedStoreReproducesInMemoryAnalyses) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.days = 0.5;
  config.seed = 20250401;

  obs::EventLog log;
  log.install();
  const scenario::ScenarioResult result = scenario::run_campaign(config);
  log.uninstall();

  std::istringstream stream(log.to_ndjson());
  const analysis::ReplayResult replay = analysis::replay_events(stream);
  EXPECT_EQ(replay.lines_skipped, 0u);
  EXPECT_EQ(replay.seed, config.seed);
  EXPECT_EQ(replay.window_end, result.window_end);
  EXPECT_FALSE(replay.samples.empty());
  EXPECT_EQ(replay.site_names.size(), result.topology.site_count());

  // Store contents: identical record streams, family by family.
  const auto mem_counts = result.store.counts();
  const auto rep_counts = replay.store.counts();
  ASSERT_EQ(rep_counts.jobs, mem_counts.jobs);
  ASSERT_EQ(rep_counts.files, mem_counts.files);
  ASSERT_EQ(rep_counts.transfers, mem_counts.transfers);
  EXPECT_EQ(rep_counts.transfers_with_taskid,
            mem_counts.transfers_with_taskid);

  // Matching: all three methods agree job-for-job.
  const core::Matcher mem_matcher(result.store);
  const core::Matcher rep_matcher(replay.store);
  const core::TriMatchResult mem_tri = core::run_all_methods(mem_matcher);
  const core::TriMatchResult rep_tri = core::run_all_methods(rep_matcher);
  for (const auto method : {core::MatchMethod::kExact, core::MatchMethod::kRM1,
                            core::MatchMethod::kRM2}) {
    const core::MatchResult& mem = mem_tri.by_method(method);
    const core::MatchResult& rep = rep_tri.by_method(method);
    ASSERT_EQ(rep.matched_job_count(), mem.matched_job_count());
    ASSERT_EQ(rep.matched_transfer_count(), mem.matched_transfer_count());
    for (std::size_t i = 0; i < mem.jobs.size(); ++i) {
      ASSERT_EQ(rep.jobs[i].job_index, mem.jobs[i].job_index);
      ASSERT_EQ(rep.jobs[i].transfer_indices, mem.jobs[i].transfer_indices);
    }
  }

  // Fig. 7/8 bandwidth series on the top matched pairs, point by point.
  for (const bool local : {false, true}) {
    const auto mem_pairs =
        analysis::top_matched_pairs(result.store, mem_tri.exact, local, 3);
    const auto rep_pairs =
        analysis::top_matched_pairs(replay.store, rep_tri.exact, local, 3);
    ASSERT_EQ(rep_pairs.size(), mem_pairs.size());
    for (std::size_t i = 0; i < mem_pairs.size(); ++i) {
      EXPECT_EQ(rep_pairs[i].src, mem_pairs[i].src);
      EXPECT_EQ(rep_pairs[i].dst, mem_pairs[i].dst);
      EXPECT_EQ(rep_pairs[i].bytes, mem_pairs[i].bytes);
      const auto mem_series =
          analysis::bandwidth_series(result.store, &mem_tri.exact,
                                     mem_pairs[i].src, mem_pairs[i].dst,
                                     util::hours(1));
      const auto rep_series =
          analysis::bandwidth_series(replay.store, &rep_tri.exact,
                                     rep_pairs[i].src, rep_pairs[i].dst,
                                     util::hours(1));
      ASSERT_EQ(rep_series.size(), mem_series.size());
      for (std::size_t b = 0; b < mem_series.size(); ++b) {
        EXPECT_EQ(rep_series[b].bin_start, mem_series[b].bin_start);
        EXPECT_DOUBLE_EQ(rep_series[b].mbps, mem_series[b].mbps);
      }
    }
  }

  // Fig. 5/6 queuing breakdown aggregates.
  const auto mem_rows = analysis::build_breakdown(result.store, mem_tri.exact);
  const auto rep_rows = analysis::build_breakdown(replay.store, rep_tri.exact);
  ASSERT_EQ(rep_rows.size(), mem_rows.size());
  const auto mem_agg = analysis::aggregate(mem_rows);
  const auto rep_agg = analysis::aggregate(rep_rows);
  EXPECT_DOUBLE_EQ(rep_agg.mean_queue_fraction, mem_agg.mean_queue_fraction);
  EXPECT_DOUBLE_EQ(rep_agg.geomean_queue_fraction,
                   mem_agg.geomean_queue_fraction);
  EXPECT_EQ(rep_agg.zero_fraction_jobs, mem_agg.zero_fraction_jobs);

  // Figs. 10-12 case-study timelines render identically.
  const analysis::CaseStudyExtractor mem_cases(result.store, mem_tri);
  const analysis::CaseStudyExtractor rep_cases(replay.store, rep_tri);
  const auto compare_case =
      [&](const std::optional<analysis::CaseStudy>& mem,
          const std::optional<analysis::CaseStudy>& rep) {
        ASSERT_EQ(rep.has_value(), mem.has_value());
        if (!mem) return;
        EXPECT_EQ(rep->match.job_index, mem->match.job_index);
        EXPECT_EQ(analysis::render_timeline(replay.store, rep->match),
                  analysis::render_timeline(result.store, mem->match));
      };
  compare_case(mem_cases.sequential_staging_case(),
               rep_cases.sequential_staging_case());
  compare_case(mem_cases.failed_spanning_case(),
               rep_cases.failed_spanning_case());
  compare_case(mem_cases.rm2_redundant_case(),
               rep_cases.rm2_redundant_case());
}

// --- flows ------------------------------------------------------------------

// With a FlowTracker installed the NDJSON stream must be the flows-off
// stream plus flow_* lines and nothing else: observers consume no
// simulation RNG and carry simulated time only.
TEST(EventsFlows, FlowsOnStreamIsFlowsOffStreamPlusFlowLines) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.days = 0.5;
  config.seed = 20250401;

  const auto run_once = [&config](bool flows) {
    obs::Registry::global().reset_for_test();
    obs::FlowTracker tracker;
    if (flows) tracker.install();
    obs::EventLog log;
    log.install();
    std::ignore = scenario::run_campaign(config);
    log.uninstall();
    if (flows) tracker.uninstall();
    return log.to_ndjson();
  };

  const std::string off = run_once(false);
  const std::string on = run_once(true);
  ASSERT_GT(on.size(), off.size());

  std::string stripped;
  stripped.reserve(off.size());
  std::size_t flow_lines = 0;
  for (const std::string& line : split_lines(on)) {
    if (line.find("\"kind\":\"flow_") != std::string::npos) {
      ++flow_lines;
      continue;
    }
    stripped += line;
    stripped += '\n';
  }
  EXPECT_GT(flow_lines, 0u);
  EXPECT_EQ(stripped, off);
}

// The offline rebuild engine IS the online analyzer (a detached
// FlowTracker fed the captured rows in stream order), so a replayed
// stream must reproduce the live tracker's analysis bit for bit.
TEST(EventsFlows, RebuiltFlowsMatchLiveTrackerBitForBit) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.days = 0.5;
  config.seed = 20250401;

  obs::FlowTracker tracker;
  tracker.install();
  obs::EventLog log;
  log.install();
  const scenario::ScenarioResult result = scenario::run_campaign(config);
  log.uninstall();
  tracker.uninstall();

  std::map<std::int64_t, std::string> names;
  for (const grid::Site& s : result.topology.sites()) {
    names[static_cast<std::int64_t>(s.id)] = s.name;
  }
  const analysis::FlowAnalysis live =
      analysis::analyze_flows(tracker, names);

  std::istringstream stream(log.to_ndjson());
  const analysis::ReplayResult replay = analysis::replay_events(stream);
  EXPECT_GT(replay.flow_events.size(), 0u);
  const analysis::FlowAnalysis rebuilt = analysis::rebuild_flows(replay);

  ASSERT_EQ(rebuilt.flows.size(), live.flows.size());
  ASSERT_GT(live.flows.size(), 0u);
  for (std::size_t i = 0; i < live.flows.size(); ++i) {
    const obs::FlowSummary& a = live.flows[i];
    const obs::FlowSummary& b = rebuilt.flows[i];
    ASSERT_EQ(b.pandaid, a.pandaid);
    ASSERT_EQ(b.taskid, a.taskid);
    ASSERT_EQ(b.site, a.site);
    ASSERT_EQ(b.attempt, a.attempt);
    ASSERT_EQ(b.failed, a.failed);
    ASSERT_EQ(b.error, a.error);
    ASSERT_EQ(b.watchdog_release, a.watchdog_release);
    ASSERT_EQ(b.shared_hits, a.shared_hits);
    ASSERT_EQ(b.phases.broker_ms, a.phases.broker_ms);
    ASSERT_EQ(b.phases.stage_in_ms, a.phases.stage_in_ms);
    ASSERT_EQ(b.phases.queue_ms, a.phases.queue_ms);
    ASSERT_EQ(b.phases.run_ms, a.phases.run_ms);
    ASSERT_EQ(b.phases.stage_out_ms, a.phases.stage_out_ms);
    ASSERT_EQ(b.phases.wall_ms, a.phases.wall_ms);
    ASSERT_EQ(b.phases.stage_in_serialized_ms,
              a.phases.stage_in_serialized_ms);
    ASSERT_EQ(b.phases.stage_in_busy_ms, a.phases.stage_in_busy_ms);
    ASSERT_EQ(b.phases.sequential_staging, a.phases.sequential_staging);
    ASSERT_EQ(b.phases.stage_in_transfers, a.phases.stage_in_transfers);
    ASSERT_EQ(b.phases.stage_in_attempts, a.phases.stage_in_attempts);
    ASSERT_EQ(b.phases.reroutes, a.phases.reroutes);
    ASSERT_EQ(b.phases.redundant_transfers, a.phases.redundant_transfers);
    ASSERT_EQ(b.phases.unregistered, a.phases.unregistered);
    ASSERT_EQ(b.link_shares.size(), a.link_shares.size());
    for (std::size_t l = 0; l < a.link_shares.size(); ++l) {
      ASSERT_EQ(b.link_shares[l].src, a.link_shares[l].src);
      ASSERT_EQ(b.link_shares[l].dst, a.link_shares[l].dst);
      ASSERT_EQ(b.link_shares[l].ms, a.link_shares[l].ms);
    }
  }

  EXPECT_EQ(rebuilt.totals.flows, live.totals.flows);
  EXPECT_EQ(rebuilt.totals.failed, live.totals.failed);
  EXPECT_EQ(rebuilt.totals.sequential_staging,
            live.totals.sequential_staging);
  EXPECT_EQ(rebuilt.totals.redundant_transfers,
            live.totals.redundant_transfers);
  EXPECT_EQ(rebuilt.totals.watchdog_releases, live.totals.watchdog_releases);
  EXPECT_EQ(rebuilt.totals.reroutes, live.totals.reroutes);

  ASSERT_EQ(rebuilt.link_ranking.size(), live.link_ranking.size());
  for (std::size_t i = 0; i < live.link_ranking.size(); ++i) {
    EXPECT_EQ(rebuilt.link_ranking[i].src, live.link_ranking[i].src);
    EXPECT_EQ(rebuilt.link_ranking[i].dst, live.link_ranking[i].dst);
    EXPECT_EQ(rebuilt.link_ranking[i].critical_ms,
              live.link_ranking[i].critical_ms);
    EXPECT_EQ(rebuilt.link_ranking[i].flows, live.link_ranking[i].flows);
  }

  // Replay's site names come from the stream, so the rendered report
  // and flamegraph stacks are byte-identical too.
  EXPECT_EQ(rebuilt.collapsed, live.collapsed);
  EXPECT_EQ(analysis::render_attribution(rebuilt),
            analysis::render_attribution(live));
}

// --- harvest ----------------------------------------------------------------

TEST(EventsHarvest, EmitStoreEventsCountsEveryRecord) {
  telemetry::MetadataStore store;
  telemetry::JobRecord j;
  j.pandaid = 1;
  j.jeditaskid = 10;
  store.record_job(j);
  telemetry::FileRecord f;
  f.pandaid = 1;
  f.jeditaskid = 10;
  f.lfn = "lfn-1";
  store.record_file(f);

  EXPECT_EQ(telemetry::emit_store_events(store, 99), 0u);  // no log: no-op

  obs::EventLog log;
  log.install();
  EXPECT_EQ(telemetry::emit_store_events(store, 99), 2u);
  log.uninstall();
  EXPECT_EQ(log.event_count(), 2u);
}

}  // namespace
