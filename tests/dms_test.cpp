// Unit tests for the Rucio-like data management substrate: DIDs,
// RSEs, catalogs, replica selection, replication rules and the transfer
// engine's bandwidth sharing / failure injection.
#include <gtest/gtest.h>

#include "dms/catalog.hpp"
#include "dms/deletion.hpp"
#include "dms/rule.hpp"
#include "dms/selector.hpp"
#include "dms/transfer.hpp"
#include "grid/builder.hpp"
#include "sim/scheduler.hpp"

namespace pandarus::dms {
namespace {

/// Tiny 3-site world: one T0 with tape, one T1 with tape, one T2.
struct World {
  grid::Topology topo;
  RseRegistry rses;
  FileCatalog catalog;
  ReplicaCatalog replicas{catalog, rses};
  sim::Scheduler scheduler;

  grid::SiteId t0, t1, t2;
  RseId t0_disk, t0_tape, t1_disk, t1_tape, t2_disk;

  World() {
    auto add = [&](const char* name, grid::Tier tier) {
      grid::Site s;
      s.name = name;
      s.tier = tier;
      s.lan_bandwidth_bps = 1e9;
      s.max_parallel_streams = 4;
      return topo.add_site(s);
    };
    t0 = add("T0", grid::Tier::kT0);
    t1 = add("T1", grid::Tier::kT1);
    t2 = add("T2", grid::Tier::kT2);
    // Links: fast T0<->T1, slow toward T2.
    for (grid::SiteId i = 0; i < 3; ++i) {
      for (grid::SiteId j = 0; j < 3; ++j) {
        grid::NetworkLink link;
        link.key = {i, j};
        link.capacity_bps = i == j ? 1e9 : (i <= 1 && j <= 1 ? 500e6 : 50e6);
        link.latency_ms = 1.0;
        link.max_active = i == j ? 4 : 2;
        grid::LoadModel::Params load;
        load.mean_util = 0.0;
        load.diurnal_amplitude = 0.0;
        load.burst_prob = 0.0;
        link.load = grid::LoadModel(load);
        topo.add_link(link);
      }
    }
    auto add_rse = [&](const char* name, grid::SiteId site, RseKind kind) {
      Rse r;
      r.name = name;
      r.site = site;
      r.kind = kind;
      return rses.add(std::move(r));
    };
    t0_disk = add_rse("T0_DISK", t0, RseKind::kDisk);
    t0_tape = add_rse("T0_TAPE", t0, RseKind::kTape);
    t1_disk = add_rse("T1_DISK", t1, RseKind::kDisk);
    t1_tape = add_rse("T1_TAPE", t1, RseKind::kTape);
    t2_disk = add_rse("T2_DISK", t2, RseKind::kDisk);
  }

  TransferEngine::Params quiet_params() {
    TransferEngine::Params p;
    p.failure_prob = 0.0;
    p.stall_prob = 0.0;
    p.registration_failure_prob = 0.0;
    p.per_stream_cap_bps = 1e12;  // not limiting
    return p;
  }
};

TEST(Activity, NamesAndDirections) {
  EXPECT_STREQ(activity_name(Activity::kAnalysisDownload),
               "Analysis Download");
  EXPECT_TRUE(is_download(Activity::kAnalysisDownload));
  EXPECT_TRUE(is_download(Activity::kAnalysisDownloadDirectIO));
  EXPECT_TRUE(is_download(Activity::kDataRebalance));
  EXPECT_TRUE(is_upload(Activity::kAnalysisUpload));
  EXPECT_TRUE(is_upload(Activity::kProductionUpload));
  EXPECT_FALSE(is_upload(Activity::kDataRebalance));
  EXPECT_FALSE(is_download(Activity::kProductionUpload));
}

TEST(RseRegistry, SiteIndexing) {
  World w;
  EXPECT_EQ(w.rses.disk_at(w.t0), w.t0_disk);
  EXPECT_EQ(w.rses.tape_at(w.t0), w.t0_tape);
  EXPECT_EQ(w.rses.tape_at(w.t2), kNoRse);
  EXPECT_EQ(w.rses.disk_at(grid::kUnknownSite), kNoRse);
}

TEST(FileCatalog, NamesAreStructured) {
  FileCatalog catalog;
  const DatasetId ds = catalog.create_dataset("mc23", "mc23.410000.DAOD");
  std::vector<FileId> files;
  for (int i = 0; i < 25; ++i) files.push_back(catalog.add_file(ds, 1000));
  EXPECT_EQ(catalog.lfn(files[4]), "AOD.000000._000004.pool.root");
  EXPECT_EQ(catalog.scope(files[0]), "mc23");
  EXPECT_EQ(catalog.dataset_name(files[0]), "mc23.410000.DAOD");
  // Files 0-9 share block 0, 10-19 block 1, ...
  EXPECT_EQ(catalog.proddblock(files[0]), catalog.proddblock(files[9]));
  EXPECT_NE(catalog.proddblock(files[9]), catalog.proddblock(files[10]));
  EXPECT_EQ(catalog.dataset_bytes(ds), 25'000u);
  EXPECT_EQ(catalog.files_of(ds).size(), 25u);
}

TEST(FileCatalog, ContainersAggregateAndNest) {
  FileCatalog catalog;
  const ContainerId top = catalog.create_container("mc23", "period.A");
  const ContainerId nested =
      catalog.create_container("mc23", "period.A.sub", top);
  const DatasetId ds1 = catalog.create_dataset("mc23", "d1", top);
  const DatasetId ds2 = catalog.create_dataset("mc23", "d2", nested);
  const FileId a = catalog.add_file(ds1, 100);
  const FileId b = catalog.add_file(ds2, 200);
  const FileId c = catalog.add_file(ds2, 300);

  EXPECT_EQ(catalog.container_count(), 2u);
  EXPECT_EQ(catalog.container(nested).parent, top);
  EXPECT_EQ(catalog.datasets_of(top).size(), 1u);
  EXPECT_EQ(catalog.datasets_of(nested).size(), 1u);
  // Top reaches everything through nesting.
  EXPECT_EQ(catalog.files_of_container(top),
            (std::vector<FileId>{a, b, c}));
  EXPECT_EQ(catalog.container_bytes(top), 600u);
  EXPECT_EQ(catalog.container_bytes(nested), 500u);
  EXPECT_EQ(catalog.files_of_container(nested),
            (std::vector<FileId>{b, c}));
}

TEST(FileCatalog, AttachDatasetMovesBetweenContainers) {
  FileCatalog catalog;
  const ContainerId c1 = catalog.create_container("mc23", "c1");
  const ContainerId c2 = catalog.create_container("mc23", "c2");
  const DatasetId ds = catalog.create_dataset("mc23", "d", c1);
  catalog.add_file(ds, 50);
  EXPECT_EQ(catalog.container_bytes(c1), 50u);
  catalog.attach_dataset(ds, c2);
  EXPECT_EQ(catalog.container_bytes(c1), 0u);
  EXPECT_EQ(catalog.container_bytes(c2), 50u);
  EXPECT_EQ(catalog.dataset(ds).container, c2);
}

TEST(ReplicaCatalog, AddRemoveQuery) {
  World w;
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  const FileId f = w.catalog.add_file(ds, 100);
  EXPECT_FALSE(w.replicas.has_replica(f, w.t0_disk));
  w.replicas.add_replica(f, w.t0_disk);
  w.replicas.add_replica(f, w.t0_disk);  // idempotent
  EXPECT_EQ(w.replicas.replica_count(), 1u);
  EXPECT_TRUE(w.replicas.on_disk_at_site(f, w.t0));
  EXPECT_FALSE(w.replicas.on_disk_at_site(f, w.t1));
  w.replicas.add_replica(f, w.t1_tape);
  EXPECT_TRUE(w.replicas.resident_at_site(f, w.t1));
  EXPECT_FALSE(w.replicas.on_disk_at_site(f, w.t1));  // tape is not disk
  EXPECT_TRUE(w.replicas.remove_replica(f, w.t0_disk));
  EXPECT_FALSE(w.replicas.remove_replica(f, w.t0_disk));
  EXPECT_FALSE(w.replicas.on_disk_at_site(f, w.t0));
}

TEST(ReplicaCatalog, BytesOnDiskAtSite) {
  World w;
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  const FileId a = w.catalog.add_file(ds, 100);
  const FileId b = w.catalog.add_file(ds, 200);
  w.replicas.add_replica(a, w.t0_disk);
  w.replicas.add_replica(b, w.t1_disk);
  const std::vector<FileId> files{a, b};
  EXPECT_EQ(w.replicas.bytes_on_disk_at_site(files, w.catalog, w.t0), 100u);
  EXPECT_EQ(w.replicas.bytes_on_disk_at_site(files, w.catalog, w.t1), 200u);
  EXPECT_EQ(w.replicas.bytes_on_disk_at_site(files, w.catalog, w.t2), 0u);
}

TEST(ReplicaCatalog, SpaceAccountingAndQuota) {
  World w;
  // Cap T2's disk at 250 bytes.
  w.rses.rse_mutable(w.t2_disk).capacity_bytes = 250;
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  const FileId a = w.catalog.add_file(ds, 100);
  const FileId b = w.catalog.add_file(ds, 100);
  const FileId c = w.catalog.add_file(ds, 100);

  EXPECT_TRUE(w.replicas.add_replica(a, w.t2_disk));
  EXPECT_TRUE(w.replicas.add_replica(b, w.t2_disk));
  EXPECT_EQ(w.rses.rse(w.t2_disk).used_bytes, 200u);
  EXPECT_FALSE(w.replicas.has_space(w.t2_disk, 100));
  // Third copy overflows the quota and is rejected.
  EXPECT_FALSE(w.replicas.add_replica(c, w.t2_disk));
  EXPECT_FALSE(w.replicas.has_replica(c, w.t2_disk));
  // Removal frees the space again.
  EXPECT_TRUE(w.replicas.remove_replica(a, w.t2_disk));
  EXPECT_EQ(w.rses.rse(w.t2_disk).used_bytes, 100u);
  EXPECT_TRUE(w.replicas.add_replica(c, w.t2_disk));
  // Idempotent re-add does not double-count usage.
  EXPECT_TRUE(w.replicas.add_replica(c, w.t2_disk));
  EXPECT_EQ(w.rses.rse(w.t2_disk).used_bytes, 200u);
}

TEST(TransferEngine, QuotaRejectionCountsAndLeavesCatalogStale) {
  World w;
  w.rses.rse_mutable(w.t1_disk).capacity_bytes = 1;  // effectively full
  TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(1),
                        w.quiet_params());
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  const FileId f = w.catalog.add_file(ds, 1'000'000);
  TransferOutcome seen;
  TransferRequest req;
  req.file = f;
  req.size_bytes = 1'000'000;
  req.src = w.t0;
  req.dst = w.t1;
  req.dst_rse = w.t1_disk;
  req.on_complete = [&](const TransferOutcome& o) { seen = o; };
  engine.submit(std::move(req));
  w.scheduler.run();
  EXPECT_TRUE(seen.success);
  EXPECT_FALSE(seen.replica_registered);
  EXPECT_EQ(engine.stats().quota_rejections, 1u);
  EXPECT_FALSE(w.replicas.has_replica(f, w.t1_disk));
}

TEST(Selector, PrefersLocalDiskThenTapeThenRemote) {
  World w;
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  const FileId f = w.catalog.add_file(ds, 100);
  ReplicaSelector selector(w.topo, w.rses, w.replicas);

  EXPECT_EQ(selector.select_source(f, w.t0, 0), kNoRse);  // no replica

  w.replicas.add_replica(f, w.t1_disk);
  EXPECT_EQ(selector.select_source(f, w.t0, 0), w.t1_disk);  // remote disk

  w.replicas.add_replica(f, w.t0_tape);
  EXPECT_EQ(selector.select_source(f, w.t0, 0), w.t0_tape);  // local tape wins

  w.replicas.add_replica(f, w.t0_disk);
  EXPECT_EQ(selector.select_source(f, w.t0, 0), w.t0_disk);  // local disk wins
}

TEST(Selector, PicksFastestRemote) {
  World w;
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  const FileId f = w.catalog.add_file(ds, 100);
  // Replicas at T0 and T2; target T1.  T0->T1 is 500 MBps, T2->T1 50.
  w.replicas.add_replica(f, w.t0_disk);
  w.replicas.add_replica(f, w.t2_disk);
  ReplicaSelector selector(w.topo, w.rses, w.replicas);
  EXPECT_EQ(selector.select_source(f, w.t1, 0), w.t0_disk);
}

TEST(TransferEngine, CompletesAndRegistersReplica) {
  World w;
  TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(1),
                        w.quiet_params());
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  const FileId f = w.catalog.add_file(ds, 500'000'000);  // 0.5 GB

  TransferOutcome seen;
  TransferRequest req;
  req.file = f;
  req.size_bytes = 500'000'000;
  req.src = w.t0;
  req.dst = w.t1;
  req.dst_rse = w.t1_disk;
  req.activity = Activity::kDataRebalance;
  req.on_complete = [&](const TransferOutcome& o) { seen = o; };
  engine.submit(std::move(req));
  w.scheduler.run();

  EXPECT_TRUE(seen.success);
  EXPECT_TRUE(seen.replica_registered);
  EXPECT_TRUE(w.replicas.has_replica(f, w.t1_disk));
  EXPECT_EQ(engine.stats().completed, 1u);
  EXPECT_EQ(engine.stats().bytes_moved, 500'000'000u);
  EXPECT_EQ(engine.in_flight(), 0u);
  // 0.5 GB at 500 MBps ~ 1 s (+ setup latency).
  EXPECT_NEAR(util::to_seconds(seen.finished_at - seen.started_at), 1.0, 0.3);
}

TEST(TransferEngine, FairSharingSlowsConcurrentTransfers) {
  World w;
  TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(1),
                        w.quiet_params());
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  std::vector<util::SimTime> finish;
  for (int i = 0; i < 2; ++i) {
    const FileId f = w.catalog.add_file(ds, 500'000'000);
    TransferRequest req;
    req.file = f;
    req.size_bytes = 500'000'000;
    req.src = w.t0;
    req.dst = w.t1;
    req.on_complete = [&](const TransferOutcome& o) {
      finish.push_back(o.finished_at);
    };
    engine.submit(std::move(req));
  }
  w.scheduler.run();
  ASSERT_EQ(finish.size(), 2u);
  // Two transfers sharing 500 MBps take ~2 s each instead of ~1 s.
  EXPECT_GT(util::to_seconds(finish.back()), 1.7);
}

TEST(TransferEngine, QueueingBeyondMaxActive) {
  World w;
  TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(1),
                        w.quiet_params());
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  // Link T0->T1 admits 2 concurrent; submit 4 and observe serialization.
  std::vector<double> durations;
  for (int i = 0; i < 4; ++i) {
    const FileId f = w.catalog.add_file(ds, 250'000'000);
    TransferRequest req;
    req.file = f;
    req.size_bytes = 250'000'000;
    req.src = w.t0;
    req.dst = w.t1;
    req.on_complete = [&](const TransferOutcome& o) {
      durations.push_back(util::to_seconds(o.finished_at));
    };
    engine.submit(std::move(req));
  }
  w.scheduler.run();
  ASSERT_EQ(durations.size(), 4u);
  // The last pair finishes roughly twice as late as the first pair.
  EXPECT_GT(durations[3], durations[0] * 1.5);
  EXPECT_EQ(engine.stats().completed, 4u);
}

TEST(TransferEngine, SequentialSiteStagesOneAtATime) {
  World w;
  // Local link with max_active = 1 (sequential staging, Fig. 10).
  grid::NetworkLink link;
  link.key = {w.t2, w.t2};
  link.capacity_bps = 100e6;
  link.max_active = 1;
  grid::LoadModel::Params quiet;
  quiet.mean_util = 0.0;
  quiet.diurnal_amplitude = 0.0;
  quiet.burst_prob = 0.0;
  link.load = grid::LoadModel(quiet);
  w.topo.add_link(link);

  TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(1),
                        w.quiet_params());
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  std::vector<std::pair<util::SimTime, util::SimTime>> spans;
  for (int i = 0; i < 3; ++i) {
    const FileId f = w.catalog.add_file(ds, 100'000'000);
    TransferRequest req;
    req.file = f;
    req.size_bytes = 100'000'000;
    req.src = w.t2;
    req.dst = w.t2;
    req.on_complete = [&](const TransferOutcome& o) {
      spans.emplace_back(o.started_at, o.finished_at);
    };
    engine.submit(std::move(req));
  }
  w.scheduler.run();
  ASSERT_EQ(spans.size(), 3u);
  // Back-to-back, never overlapping.
  EXPECT_LE(spans[0].second, spans[1].first + 1);
  EXPECT_LE(spans[1].second, spans[2].first + 1);
}

TEST(TransferEngine, FailureRetriesThenFails) {
  World w;
  TransferEngine::Params params = w.quiet_params();
  params.failure_prob = 1.0;  // every attempt fails
  params.max_attempts = 3;
  TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(1),
                        params);
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  const FileId f = w.catalog.add_file(ds, 1'000'000);
  TransferOutcome seen;
  TransferRequest req;
  req.file = f;
  req.size_bytes = 1'000'000;
  req.src = w.t0;
  req.dst = w.t1;
  req.dst_rse = w.t1_disk;
  req.on_complete = [&](const TransferOutcome& o) { seen = o; };
  engine.submit(std::move(req));
  w.scheduler.run();
  EXPECT_FALSE(seen.success);
  EXPECT_EQ(seen.attempts, 3u);
  EXPECT_EQ(engine.stats().failed, 1u);
  EXPECT_EQ(engine.stats().retries, 2u);
  EXPECT_FALSE(w.replicas.has_replica(f, w.t1_disk));
}

TEST(TransferEngine, StallsSlowTransfersDown) {
  World w;
  TransferEngine::Params stall = w.quiet_params();
  stall.stall_prob = 1.0;
  stall.stall_factor_min = 0.1;
  stall.stall_factor_max = 0.1;
  TransferEngine fast_engine(w.scheduler, w.topo, w.replicas, util::Rng(1),
                             w.quiet_params());
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");

  util::SimTime fast_done = 0;
  {
    const FileId f = w.catalog.add_file(ds, 500'000'000);
    TransferRequest req;
    req.file = f;
    req.size_bytes = 500'000'000;
    req.src = w.t0;
    req.dst = w.t1;
    req.on_complete = [&](const TransferOutcome& o) {
      fast_done = o.finished_at - o.started_at;
    };
    fast_engine.submit(std::move(req));
  }
  w.scheduler.run();

  sim::Scheduler s2;
  TransferEngine slow_engine(s2, w.topo, w.replicas, util::Rng(1), stall);
  util::SimTime slow_done = 0;
  {
    const FileId f = w.catalog.add_file(ds, 500'000'000);
    TransferRequest req;
    req.file = f;
    req.size_bytes = 500'000'000;
    req.src = w.t0;
    req.dst = w.t1;
    req.on_complete = [&](const TransferOutcome& o) {
      slow_done = o.finished_at - o.started_at;
    };
    slow_engine.submit(std::move(req));
  }
  s2.run();
  EXPECT_GT(static_cast<double>(slow_done),
            static_cast<double>(fast_done) * 5.0);
}

TEST(TransferEngine, RegistrationFailureLeavesCatalogStale) {
  World w;
  TransferEngine::Params params = w.quiet_params();
  params.registration_failure_prob = 1.0;
  TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(1),
                        params);
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  const FileId f = w.catalog.add_file(ds, 1'000'000);
  TransferOutcome seen;
  TransferRequest req;
  req.file = f;
  req.size_bytes = 1'000'000;
  req.src = w.t0;
  req.dst = w.t1;
  req.dst_rse = w.t1_disk;
  req.on_complete = [&](const TransferOutcome& o) { seen = o; };
  engine.submit(std::move(req));
  w.scheduler.run();
  EXPECT_TRUE(seen.success);
  EXPECT_FALSE(seen.replica_registered);  // the Fig. 12 seed
  EXPECT_FALSE(w.replicas.has_replica(f, w.t1_disk));
  EXPECT_EQ(engine.stats().registration_failures, 1u);
}

TEST(RuleEngine, SatisfiesCopyDeficit) {
  World w;
  TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(1),
                        w.quiet_params());
  RuleEngine::Params params;
  RuleEngine rules(w.scheduler, w.topo, w.catalog, w.replicas, w.rses,
                   engine, util::Rng(2), params);
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  std::vector<FileId> files;
  for (int i = 0; i < 5; ++i) {
    files.push_back(w.catalog.add_file(ds, 1'000'000));
    w.replicas.add_replica(files.back(), w.t0_disk);
  }
  rules.add_rule({ds, 2, grid::Tier::kT1});
  const std::uint32_t submitted = rules.evaluate_once();
  EXPECT_EQ(submitted, 5u);
  w.scheduler.run();
  for (FileId f : files) {
    EXPECT_TRUE(w.replicas.has_replica(f, w.t1_disk));
  }
  // Second pass: rule satisfied, nothing to do.
  EXPECT_EQ(rules.evaluate_once(), 0u);
}

TEST(RuleEngine, RespectsPerPassCap) {
  World w;
  TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(1),
                        w.quiet_params());
  RuleEngine::Params params;
  params.max_transfers_per_pass = 3;
  RuleEngine rules(w.scheduler, w.topo, w.catalog, w.replicas, w.rses,
                   engine, util::Rng(2), params);
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  for (int i = 0; i < 10; ++i) {
    w.replicas.add_replica(w.catalog.add_file(ds, 1'000'000), w.t0_disk);
  }
  rules.add_rule({ds, 2, grid::Tier::kT1});
  EXPECT_EQ(rules.evaluate_once(), 3u);
}

TEST(DeletionDaemon, ExpiresOnlyTransientDiskReplicas) {
  World w;
  DeletionDaemon::Params params;
  params.expiry_prob = 1.0;  // deterministic expiry
  DeletionDaemon daemon(w.scheduler, w.catalog, w.replicas, w.rses,
                        util::Rng(5), params);
  const DatasetId transient = w.catalog.create_dataset("mc23", "cold");
  const DatasetId pinned = w.catalog.create_dataset("mc23", "hot");
  const FileId cold_file = w.catalog.add_file(transient, 1'000);
  const FileId hot_file = w.catalog.add_file(pinned, 1'000);
  w.replicas.add_replica(cold_file, w.t0_disk);
  w.replicas.add_replica(cold_file, w.t0_tape);
  w.replicas.add_replica(hot_file, w.t0_disk);
  daemon.add_transient(transient);

  EXPECT_EQ(daemon.sweep_once(), 1u);
  EXPECT_FALSE(w.replicas.has_replica(cold_file, w.t0_disk));
  EXPECT_TRUE(w.replicas.has_replica(cold_file, w.t0_tape));  // tape kept
  EXPECT_TRUE(w.replicas.has_replica(hot_file, w.t0_disk));   // not managed
  EXPECT_EQ(daemon.stats().replicas_deleted, 1u);
  EXPECT_EQ(daemon.stats().bytes_deleted, 1'000u);

  // Nothing left to expire.
  EXPECT_EQ(daemon.sweep_once(), 0u);
}

TEST(DeletionDaemon, PeriodicSweepsRunUntilDeadline) {
  World w;
  DeletionDaemon::Params params;
  params.sweep_interval = util::hours(1);
  params.expiry_prob = 0.0;  // count sweeps only
  DeletionDaemon daemon(w.scheduler, w.catalog, w.replicas, w.rses,
                        util::Rng(5), params);
  daemon.start(util::hours(5) + util::minutes(30));
  w.scheduler.run();
  EXPECT_EQ(daemon.stats().sweeps, 5u);
}

TEST(RuleEngine, StageFromTapeIsLocalAndSkipsPresent) {
  World w;
  TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(1),
                        w.quiet_params());
  RuleEngine rules(w.scheduler, w.topo, w.catalog, w.replicas, w.rses,
                   engine, util::Rng(2), RuleEngine::Params{});
  const DatasetId ds = w.catalog.create_dataset("mc23", "d");
  const FileId a = w.catalog.add_file(ds, 1'000'000);
  const FileId b = w.catalog.add_file(ds, 1'000'000);
  w.replicas.add_replica(a, w.t0_tape);
  w.replicas.add_replica(b, w.t0_tape);
  w.replicas.add_replica(b, w.t0_disk);  // already staged

  EXPECT_EQ(rules.stage_from_tape(ds, w.t0), 1u);
  EXPECT_EQ(rules.stage_from_tape(ds, w.t2), 0u);  // no tape at T2
  w.scheduler.run();
  EXPECT_TRUE(w.replicas.has_replica(a, w.t0_disk));
}

}  // namespace
}  // namespace pandarus::dms
