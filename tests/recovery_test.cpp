// Torn-tail recovery: truncate the NDJSON and colstore sinks at every
// byte offset of their final 4 KiB and salvage — never a crash, always
// the longest valid prefix.  A sparse subset is replayed end-to-end to
// check the salvaged stream's matched counts never exceed the full
// run's.  Also covers the PANDARUS_EVENTS_FSYNC spec parser and the
// recover-file round trips (in place and to a new path).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/event_source.hpp"
#include "analysis/events_replay.hpp"
#include "core/relaxed.hpp"
#include "obs/colstore.hpp"
#include "obs/event_log.hpp"
#include "obs/recover.hpp"
#include "scenario/campaign.hpp"
#include "scenario/config.hpp"
#include "util/json.hpp"

namespace pandarus {
namespace {

class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  std::fclose(f);
  return out;
}

void write_file(const std::string& path, std::string_view bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Small synthetic stream (a few hundred lines, ~10 chunks as colstore)
/// for the dense every-offset fuzz; built once.
struct SyntheticStream {
  std::string ndjson;
  std::string colstore_path = "recovery_synth.pcol";
  std::uint64_t events = 0;
};

const SyntheticStream& synthetic() {
  static const SyntheticStream* stream = [] {
    auto* s = new SyntheticStream;
    obs::EventLog log;
    for (int i = 0; i < 600; ++i) {
      log.emit(obs::Event("synthetic", i, std::int64_t{i})
                   .field("payload",
                          std::string(static_cast<std::size_t>(i % 37), 'x'))
                   .field("value", 0.25 * i)
                   .field("flag", i % 3 == 0));
    }
    log.close();
    s->ndjson = log.to_ndjson();
    s->events = log.events_written();  // includes the terminal log_stats
    obs::ColWriterOptions options;
    options.rows_per_chunk = 64;
    EXPECT_TRUE(obs::write_colstore(log, s->colstore_path, options));
    return s;
  }();
  return *stream;
}

/// Campaign artifacts for the sparse replay subset; built once, and
/// before any Matcher runs (matcher counters feed the sampler).
struct CampaignStream {
  std::string ndjson;
  std::size_t jobs = 0;
  std::size_t transfers = 0;
  std::size_t exact_matched = 0;
};

const CampaignStream& campaign() {
  static const CampaignStream* stream = [] {
    auto* s = new CampaignStream;
    scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
    config.seed = 7;
    obs::EventLog log;
    log.install();
    (void)scenario::run_campaign(config);
    log.close();
    log.uninstall();
    s->ndjson = log.to_ndjson();
    TempFile full("recovery_full.ndjson");
    write_file(full.path(), s->ndjson);
    const analysis::ReplayResult replay =
        analysis::replay_events_file(full.path());
    s->jobs = replay.store.counts().jobs;
    s->transfers = replay.store.counts().transfers;
    const core::Matcher matcher(replay.store);
    s->exact_matched =
        core::run_all_methods(matcher).exact.matched_job_count();
    return s;
  }();
  return *stream;
}

TEST(RecoveryTest, ParseFsyncPolicy) {
  obs::FsyncConfig config;
  EXPECT_TRUE(obs::parse_fsync_policy("off", config));
  EXPECT_EQ(config.policy, obs::FsyncPolicy::kOff);
  EXPECT_TRUE(obs::parse_fsync_policy("flush", config));
  EXPECT_EQ(config.policy, obs::FsyncPolicy::kFlush);
  EXPECT_TRUE(obs::parse_fsync_policy("interval:250", config));
  EXPECT_EQ(config.policy, obs::FsyncPolicy::kInterval);
  EXPECT_EQ(config.interval_ms, 250);
  for (const char* bad :
       {"", "Flush", "interval", "interval:", "interval:0", "interval:-5",
        "interval:abc", "fsync"}) {
    obs::FsyncConfig untouched;
    EXPECT_FALSE(obs::parse_fsync_policy(bad, untouched)) << bad;
    EXPECT_EQ(untouched.policy, obs::FsyncPolicy::kOff) << bad;
  }
}

TEST(RecoveryTest, NdjsonEveryTornOffset) {
  const SyntheticStream& s = synthetic();
  const std::size_t begin =
      s.ndjson.size() > 4096 ? s.ndjson.size() - 4096 : 0;
  for (std::size_t cut = begin; cut <= s.ndjson.size(); ++cut) {
    const std::string_view prefix(s.ndjson.data(), cut);
    const obs::RecoveryReport report = obs::salvage_ndjson(prefix);
    ASSERT_TRUE(report.ok);
    ASSERT_LE(report.salvaged_bytes, cut);
    ASSERT_EQ(report.salvaged_bytes + report.dropped_bytes, cut);
    // The survivor is itself a whole-line prefix of the original.
    ASSERT_TRUE(report.salvaged_bytes == 0 ||
                prefix[report.salvaged_bytes - 1] == '\n');
    // A clean cut on a line boundary loses nothing.
    if (cut == 0 || prefix.back() == '\n') {
      EXPECT_EQ(report.salvaged_bytes, cut);
      EXPECT_FALSE(report.truncated);
    } else {
      EXPECT_TRUE(report.truncated);
    }
  }
}

TEST(RecoveryTest, ColstoreEveryTornOffset) {
  const SyntheticStream& s = synthetic();
  const std::string bytes = read_file(s.colstore_path);
  ASSERT_GT(bytes.size(), 12u);
  TempFile torn("recovery_torn.pcol");
  // Start past the 12-byte file header (shorter prefixes are a hard
  // "not a colstore file" even in recover mode) and cover the final
  // 4 KiB at most.
  const std::size_t begin =
      std::max<std::size_t>(13, bytes.size() > 4096 ? bytes.size() - 4096
                                                    : 13);
  std::uint64_t previous_events = 0;
  for (std::size_t cut = begin; cut <= bytes.size(); ++cut) {
    write_file(torn.path(), std::string_view(bytes.data(), cut));
    obs::ColReader reader(torn.path(), obs::ColFilter{},
                          obs::ColReadOptions{/*recover=*/true});
    obs::DecodedEvent event;
    std::uint64_t rows = 0;
    while (reader.next(event)) ++rows;
    const obs::RecoveryReport& report = reader.recovery();
    ASSERT_TRUE(report.ok) << "cut=" << cut << ": " << report.detail;
    ASSERT_EQ(report.salvaged_events, rows);
    ASSERT_LE(report.salvaged_bytes, cut);
    // Salvage is monotone in the prefix length.
    ASSERT_GE(rows, previous_events) << "cut=" << cut;
    previous_events = rows;
  }
  EXPECT_EQ(previous_events, s.events);
}

TEST(RecoveryTest, ColstoreTornTailIsHardErrorWithoutRecover) {
  const SyntheticStream& s = synthetic();
  const std::string bytes = read_file(s.colstore_path);
  TempFile torn("recovery_torn_strict.pcol");
  write_file(torn.path(),
             std::string_view(bytes.data(), bytes.size() - 7));
  obs::ColReader reader(torn.path());
  obs::DecodedEvent event;
  while (reader.next(event)) {
  }
  EXPECT_FALSE(reader.ok());
}

TEST(RecoveryTest, RecoverNdjsonFileInPlaceAndToNewPath) {
  const SyntheticStream& s = synthetic();
  TempFile damaged("recovery_damaged.ndjson");
  TempFile repaired("recovery_repaired.ndjson");
  // Cut mid-line.
  const std::size_t cut = s.ndjson.size() - 13;
  write_file(damaged.path(), std::string_view(s.ndjson.data(), cut));
  obs::RecoveryReport report =
      obs::recover_ndjson_file(damaged.path(), repaired.path());
  ASSERT_TRUE(report.ok);
  EXPECT_TRUE(report.truncated);
  const std::string out = read_file(repaired.path());
  EXPECT_EQ(out.size(), report.salvaged_bytes);
  EXPECT_EQ(out, s.ndjson.substr(0, out.size()));
  // In place: same survivor, and a second pass is a no-op.
  report = obs::recover_ndjson_file(damaged.path(), damaged.path());
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(read_file(damaged.path()), out);
  report = obs::recover_ndjson_file(damaged.path(), damaged.path());
  ASSERT_TRUE(report.ok);
  EXPECT_FALSE(report.truncated);
  EXPECT_EQ(read_file(damaged.path()), out);
}

TEST(RecoveryTest, RecoverColstoreFileDropsTornChunk) {
  const SyntheticStream& s = synthetic();
  const std::string bytes = read_file(s.colstore_path);
  TempFile damaged("recovery_damaged.pcol");
  TempFile repaired("recovery_repaired.pcol");
  write_file(damaged.path(),
             std::string_view(bytes.data(), bytes.size() - 31));
  const obs::RecoveryReport report =
      obs::recover_colstore_file(damaged.path(), repaired.path());
  ASSERT_TRUE(report.ok);
  EXPECT_TRUE(report.truncated);
  EXPECT_LT(report.salvaged_events, s.events);
  // The repaired file scans cleanly without recover mode.
  obs::ColReader reader(repaired.path());
  obs::DecodedEvent event;
  std::uint64_t rows = 0;
  while (reader.next(event)) ++rows;
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(rows, report.salvaged_events);
}

TEST(RecoveryTest, SparseTornReplayNeverExceedsFullCounts) {
  const CampaignStream& full = campaign();
  ASSERT_GT(full.ndjson.size(), 4096u);
  ASSERT_GT(full.exact_matched, 0u);
  TempFile torn("recovery_torn_replay.ndjson");
  // A handful of offsets across the final 4 KiB — the dense loop above
  // covers salvage itself; this end-to-end subset keeps runtime sane.
  for (const std::size_t back : {1u, 97u, 1033u, 4095u}) {
    const std::size_t cut = full.ndjson.size() - back;
    const obs::RecoveryReport report =
        obs::salvage_ndjson(std::string_view(full.ndjson.data(), cut));
    ASSERT_TRUE(report.ok);
    write_file(torn.path(),
               std::string_view(full.ndjson.data(), report.salvaged_bytes));
    const analysis::ReplayResult replay =
        analysis::replay_events_file(torn.path());
    EXPECT_LE(replay.store.counts().jobs, full.jobs);
    EXPECT_LE(replay.store.counts().transfers, full.transfers);
    const core::Matcher matcher(replay.store);
    EXPECT_LE(core::run_all_methods(matcher).exact.matched_job_count(),
              full.exact_matched)
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace pandarus
