// Unit tests for the windowed matcher on hand-built stores where the
// expected window arithmetic is checkable by eye.
#include <gtest/gtest.h>

#include "core/windowed.hpp"

namespace pandarus::core {
namespace {

using telemetry::FileRecord;
using telemetry::JobRecord;
using telemetry::MetadataStore;
using telemetry::TransferRecord;

/// One job per hour, each with one matching local transfer just before
/// its start.
MetadataStore hourly_store(int n_jobs) {
  MetadataStore store;
  for (int i = 0; i < n_jobs; ++i) {
    const util::SimTime base = util::hours(i);
    JobRecord j;
    j.pandaid = 100 + i;
    j.jeditaskid = 7;
    j.computing_site = 0;
    j.creation_time = base;
    j.start_time = base + util::minutes(10);
    j.end_time = base + util::minutes(40);
    j.ninputfilebytes = 500;
    store.record_job(j);

    FileRecord f;
    f.pandaid = j.pandaid;
    f.jeditaskid = 7;
    f.lfn = "f" + std::to_string(i);
    f.dataset = "ds";
    f.proddblock = "blk";
    f.scope = "mc23";
    f.file_size = 500;
    store.record_file(f);

    TransferRecord t;
    t.transfer_id = static_cast<std::uint64_t>(1000 + i);
    t.jeditaskid = 7;
    t.lfn = f.lfn;
    t.dataset = f.dataset;
    t.proddblock = f.proddblock;
    t.scope = f.scope;
    t.file_size = 500;
    t.source_site = 0;
    t.destination_site = 0;
    t.activity = dms::Activity::kAnalysisDownload;
    t.started_at = base + util::minutes(2);
    t.finished_at = base + util::minutes(8);
    t.success = true;
    store.record_transfer(t);
  }
  return store;
}

TEST(WindowedMatcher, WindowCountCoversJobSpan) {
  const MetadataStore store = hourly_store(10);  // ends span ~9h40m
  WindowedMatcher::Config config;
  config.window = util::hours(2);
  const WindowedMatcher matcher(store, config);
  EXPECT_EQ(matcher.window_count(), 5u);
}

TEST(WindowedMatcher, EmptyStoreYieldsNothing) {
  MetadataStore store;
  const WindowedMatcher matcher(store, {});
  EXPECT_EQ(matcher.window_count(), 0u);
  EXPECT_EQ(matcher.run(MatchOptions::exact()).matched_job_count(), 0u);
}

TEST(WindowedMatcher, MatchesEveryJobWithAdequateLookback) {
  const MetadataStore store = hourly_store(12);
  WindowedMatcher::Config config;
  config.window = util::hours(3);
  config.lookback = util::hours(1);  // covers each job's own transfer
  const WindowedMatcher matcher(store, config);
  const MatchResult result = matcher.run(MatchOptions::exact());
  EXPECT_EQ(result.matched_job_count(), 12u);
  // Original indices, ordered.
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    EXPECT_EQ(result.jobs[i].job_index, i);
    ASSERT_EQ(result.jobs[i].transfer_indices.size(), 1u);
    EXPECT_EQ(result.jobs[i].transfer_indices[0], i);
  }
}

TEST(WindowedMatcher, AgreesWithGlobalMatcher) {
  const MetadataStore store = hourly_store(24);
  const Matcher global(store);
  WindowedMatcher::Config config;
  config.window = util::hours(5);
  config.lookback = util::hours(2);
  const WindowedMatcher windowed(store, config);
  for (const auto options :
       {MatchOptions::exact(), MatchOptions::rm1(), MatchOptions::rm2()}) {
    const auto a = global.run(options);
    const auto b = windowed.run(options);
    ASSERT_EQ(a.matched_job_count(), b.matched_job_count());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
      EXPECT_EQ(a.jobs[i].job_index, b.jobs[i].job_index);
      EXPECT_EQ(a.jobs[i].transfer_indices, b.jobs[i].transfer_indices);
    }
  }
}

TEST(WindowedMatcher, ShortLookbackDropsOldTransfers) {
  // Put the transfer a full day before the job: a 1-hour lookback with a
  // 1-hour window cannot see it.
  MetadataStore store = hourly_store(1);
  store.transfers_mutable()[0].started_at = -util::days(1);
  store.transfers_mutable()[0].finished_at =
      -util::days(1) + util::minutes(5);
  WindowedMatcher::Config config;
  config.window = util::hours(1);
  config.lookback = util::hours(1);
  const WindowedMatcher windowed(store, config);
  EXPECT_EQ(windowed.run(MatchOptions::rm1()).matched_job_count(), 0u);
  // The global matcher still finds it.
  const Matcher global(store);
  EXPECT_EQ(global.run(MatchOptions::rm1()).matched_job_count(), 1u);
}

}  // namespace
}  // namespace pandarus::core
