// Unit tests for the discrete-event scheduler: ordering, tie-breaking,
// cancellation, clock semantics, nested scheduling.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"

namespace pandarus::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, ClockAdvancesToEventTime) {
  Scheduler s;
  util::SimTime seen = -1;
  s.schedule_at(42, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 42);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  util::SimTime seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_after(50, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 150);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  util::SimTime seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_at(10, [&] { seen = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(seen, 100);
}

TEST(Scheduler, NegativeDelayClampsToZero) {
  Scheduler s;
  bool fired = false;
  s.schedule_after(-5, [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), 0);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  auto handle = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());  // second cancel is a no-op
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelAfterFireReturnsFalse) {
  Scheduler s;
  auto handle = s.schedule_at(1, [] {});
  s.run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Scheduler, DefaultHandleIsInert) {
  Scheduler::EventHandle handle;
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  std::vector<util::SimTime> fired;
  for (util::SimTime t : {10, 20, 30, 40}) {
    s.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  s.run_until(25);
  EXPECT_EQ(fired, (std::vector<util::SimTime>{10, 20}));
  EXPECT_EQ(s.now(), 25);
  s.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Scheduler, RunUntilIncludesBoundaryEvents) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(25, [&] { fired = true; });
  s.run_until(25);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_at(5, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, ProcessedCountSkipsCancelled) {
  Scheduler s;
  auto h1 = s.schedule_at(1, [] {});
  s.schedule_at(2, [] {});
  h1.cancel();
  s.run();
  EXPECT_EQ(s.processed_count(), 1u);
}

TEST(Scheduler, EventsCanRescheduleThemselves) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) s.schedule_after(10, tick);
  };
  s.schedule_at(0, tick);
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 40);
}

TEST(Scheduler, CancelInsideEarlierEvent) {
  Scheduler s;
  bool fired = false;
  auto later = s.schedule_at(20, [&] { fired = true; });
  s.schedule_at(10, [&] { later.cancel(); });
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  util::SimTime last = -1;
  bool monotonic = true;
  for (int i = 0; i < 10'000; ++i) {
    const util::SimTime t = (i * 7919) % 1000;  // scrambled times
    s.schedule_at(t, [&, t] {
      if (t < last) monotonic = false;
      last = t;
    });
  }
  s.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(s.processed_count(), 10'000u);
}

}  // namespace
}  // namespace pandarus::sim
