// Health engine correctness: bucket-ring expiry, detector lifecycle
// hysteresis (pending → firing → resolved), instant detectors (breaker
// open/flap, transfer stall), SLO burn-rate evaluation, epoch reset on
// simulated-time regression, observe_json ↔ typed-feed parity, the
// campaign-level alert-strip byte-identity guarantee, live-vs-replay
// status_json parity, and concurrent feed/snapshot safety (TSan).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/health_replay.hpp"
#include "obs/event_log.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "scenario/campaign.hpp"
#include "scenario/config.hpp"
#include "util/json.hpp"

namespace pandarus {
namespace {

/// Temp file in the test's working directory, removed on scope exit.
class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// One sampler row with a single jobs_queued column.
void feed_queue(obs::HealthEngine& engine, std::int64_t ts,
                std::int64_t depth) {
  engine.on_sample(ts, {"jobs_queued"}, {depth});
}

std::vector<obs::AlertTransition> transitions_for(
    const obs::HealthEngine& engine, std::string_view detector) {
  std::vector<obs::AlertTransition> out;
  for (const obs::AlertTransition& t : engine.transitions()) {
    if (t.detector == detector) out.push_back(t);
  }
  return out;
}

// --- BucketRing -------------------------------------------------------------

TEST(BucketRing, CountsWithinWindowAndExpires) {
  obs::BucketRing ring(/*bucket_ms=*/100, /*window_ms=*/1000);
  ring.add(0);
  ring.add(50);   // same bucket as ts=0
  ring.add(500);
  EXPECT_EQ(ring.total(500), 3u);
  // ts=0 bucket leaves the window once now reaches bucket 10.
  EXPECT_EQ(ring.total(1000), 1u);
  EXPECT_EQ(ring.total(10'000), 0u);
}

TEST(BucketRing, ResetClears) {
  obs::BucketRing ring(100, 1000);
  ring.add(0, 7);
  EXPECT_EQ(ring.total(0), 7u);
  ring.reset();
  EXPECT_EQ(ring.total(0), 0u);
}

TEST(BucketRing, DegenerateWidthsClampToOne) {
  obs::BucketRing ring(0, 0);  // must not divide by zero
  ring.add(5);
  EXPECT_EQ(ring.total(5), 1u);
}

TEST(AlertPhase, Names) {
  EXPECT_EQ(obs::alert_phase_name(obs::AlertPhase::kPending), "pending");
  EXPECT_EQ(obs::alert_phase_name(obs::AlertPhase::kFiring), "firing");
  EXPECT_EQ(obs::alert_phase_name(obs::AlertPhase::kResolved), "resolved");
}

// --- queue-depth lifecycle --------------------------------------------------

TEST(HealthDetectors, QueueSpikeWalksPendingFiringResolved) {
  obs::HealthEngine engine;

  // Flat baseline primes the EWMA (sd == 0 → any rise is a spike).
  feed_queue(engine, 1000, 10);
  feed_queue(engine, 2000, 10);
  EXPECT_EQ(engine.counts().active_pending, 0u);

  feed_queue(engine, 3000, 100);  // breach #1 → pending
  {
    const auto c = engine.counts();
    EXPECT_EQ(c.active_pending, 1u);
    EXPECT_EQ(c.fired, 0u);
  }
  // The EWMA adapted toward 100, so the second breach must outrun the
  // widened baseline to keep the streak alive.
  feed_queue(engine, 4000, 1000);  // breach #2 → firing
  {
    const auto c = engine.counts();
    EXPECT_EQ(c.active_firing, 1u);
    EXPECT_EQ(c.fired, 1u);
  }

  feed_queue(engine, 5000, 10);  // clear #1 — still firing (hysteresis)
  EXPECT_EQ(engine.counts().active_firing, 1u);
  feed_queue(engine, 6000, 10);  // clear #2 → resolved
  {
    const auto c = engine.counts();
    EXPECT_EQ(c.active_firing, 0u);
    EXPECT_EQ(c.active_pending, 0u);
    EXPECT_EQ(c.resolved, 1u);
  }

  const auto ts = transitions_for(engine, "queue_depth_spike");
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[0].phase, obs::AlertPhase::kPending);
  EXPECT_EQ(ts[0].ts, 3000);
  EXPECT_EQ(ts[1].phase, obs::AlertPhase::kFiring);
  EXPECT_EQ(ts[1].ts, 4000);
  EXPECT_EQ(ts[2].phase, obs::AlertPhase::kResolved);
  EXPECT_EQ(ts[2].ts, 6000);
}

TEST(HealthDetectors, PendingBlipResolvesWithoutFiring) {
  obs::HealthEngine engine;
  feed_queue(engine, 1000, 10);
  feed_queue(engine, 2000, 10);
  feed_queue(engine, 3000, 100);  // one-tick blip → pending
  feed_queue(engine, 4000, 10);
  feed_queue(engine, 5000, 10);  // two clears → resolved, never fired
  const auto c = engine.counts();
  EXPECT_EQ(c.fired, 0u);
  EXPECT_EQ(c.resolved, 1u);
  const auto resolved = engine.alerts();
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].fire_count, 0u);
  EXPECT_EQ(resolved[0].phase, obs::AlertPhase::kResolved);
}

TEST(HealthDetectors, SmallQueuesNeverAlert) {
  obs::HealthEngine engine;  // queue_min_value = 64 floor
  feed_queue(engine, 1000, 1);
  feed_queue(engine, 2000, 1);
  feed_queue(engine, 3000, 50);  // huge z but under the absolute floor
  EXPECT_EQ(engine.counts().active_pending, 0u);
  EXPECT_EQ(engine.counts().fired, 0u);
}

// --- link / breaker detectors -----------------------------------------------

TEST(HealthDetectors, SaturatedLinkFiresInstantlyAndResolves) {
  obs::HealthEngine engine;
  engine.on_link_sample(1000, 3, 7, /*queued=*/12, /*utilization=*/1.0);
  {
    const auto c = engine.counts();
    EXPECT_EQ(c.active_firing, 1u);
    EXPECT_EQ(c.fired, 1u);
  }
  const auto active = engine.alerts();
  ASSERT_FALSE(active.empty());
  EXPECT_EQ(active[0].detector, "link_util_spike");
  EXPECT_EQ(active[0].entity, "link:3->7");

  engine.on_link_sample(2000, 3, 7, 0, 0.01);
  EXPECT_EQ(engine.counts().resolved, 1u);
  EXPECT_EQ(engine.counts().active_firing, 0u);
}

TEST(HealthDetectors, QuietLinkStaysQuiet) {
  obs::HealthEngine engine;
  for (int i = 0; i < 10; ++i) {
    engine.on_link_sample(1000 * (i + 1), 0, 1, 0, 0.1);
  }
  EXPECT_EQ(engine.counts().fired, 0u);
}

TEST(HealthDetectors, BreakerOpenAndFlapEscalation) {
  obs::HealthEngine engine;
  engine.on_breaker(1000, 2, 5, /*open=*/true);
  {
    const auto ts = transitions_for(engine, "breaker_open");
    ASSERT_EQ(ts.size(), 2u);  // pending + firing at the same instant
    EXPECT_EQ(ts[0].ts, ts[1].ts);
    EXPECT_EQ(ts[1].phase, obs::AlertPhase::kFiring);
  }
  engine.on_breaker(2000, 2, 5, false);
  EXPECT_EQ(transitions_for(engine, "breaker_open").back().phase,
            obs::AlertPhase::kResolved);

  // Two more open/close cycles reach the flap threshold (4 transitions
  // inside the window) and escalate to the critical flap alert.
  engine.on_breaker(3000, 2, 5, true);
  EXPECT_TRUE(transitions_for(engine, "breaker_flap").empty());
  engine.on_breaker(4000, 2, 5, false);
  const auto flaps = transitions_for(engine, "breaker_flap");
  ASSERT_FALSE(flaps.empty());
  EXPECT_EQ(flaps.back().phase, obs::AlertPhase::kFiring);
  EXPECT_EQ(flaps.back().entity, "link:2->5");
  EXPECT_EQ(flaps.back().severity, "critical");
}

// --- transfer stall + SLOs --------------------------------------------------

TEST(HealthDetectors, TransferStallWindowFiresAndExpires) {
  obs::HealthEngine engine;
  const obs::HealthConfig& cfg = engine.config();
  engine.on_transfer_terminal(1000, false, "stalled_terminal", 500);
  engine.on_transfer_terminal(2000, false, "stalled_terminal", 500);
  EXPECT_EQ(engine.counts().fired, 0u);
  engine.on_transfer_terminal(3000, false, "stalled_terminal", 500);
  EXPECT_EQ(engine.counts().fired, 1u);  // threshold 3 in window

  // Far outside the stall window the ring is empty again; the next
  // terminal observation clears the (instant) alert.
  engine.on_transfer_terminal(3000 + 2 * cfg.stall_window_ms, true, "none",
                              500);
  EXPECT_EQ(engine.counts().resolved, 1u);
}

TEST(HealthDetectors, NonStallFailuresDoNotCountTowardStall) {
  obs::HealthEngine engine;
  for (int i = 0; i < 10; ++i) {
    engine.on_transfer_terminal(1000 * (i + 1), false, "checksum_mismatch",
                                500);
  }
  EXPECT_TRUE(transitions_for(engine, "transfer_stall").empty());
}

TEST(HealthSlo, TransferCountersAndBurnRates) {
  obs::HealthEngine engine;
  const obs::HealthConfig& cfg = engine.config();
  // 8 fast successes, 2 failures → success bad_frac 0.2 against a 0.90
  // target: burn = 0.2 / 0.1 = 2.0 on both windows.
  for (int i = 0; i < 8; ++i) {
    engine.on_transfer_terminal(1000 + i, true, "none", 500);
  }
  engine.on_transfer_terminal(2000, false, "link_blackout", 500);
  engine.on_transfer_terminal(2001, false, "link_blackout", 500);

  const auto slos = engine.slos();
  ASSERT_EQ(slos.size(), 3u);
  EXPECT_EQ(slos[0].name, "transfer_latency");
  EXPECT_EQ(slos[0].good, 8u);  // only successes feed latency
  EXPECT_EQ(slos[0].bad, 0u);
  EXPECT_EQ(slos[1].name, "transfer_success");
  EXPECT_EQ(slos[1].good, 8u);
  EXPECT_EQ(slos[1].bad, 2u);
  EXPECT_DOUBLE_EQ(slos[1].burn_fast,
                   0.2 / (1.0 - cfg.transfer_success_target));
  EXPECT_DOUBLE_EQ(slos[1].burn_slow, slos[1].burn_fast);
  EXPECT_EQ(slos[2].name, "event_integrity");
}

TEST(HealthSlo, SlowTransfersBurnTheLatencyBudget) {
  obs::HealthEngine engine;
  const obs::HealthConfig& cfg = engine.config();
  engine.on_transfer_terminal(1000, true, "none",
                              cfg.transfer_latency_bound_ms + 1);
  const auto slos = engine.slos();
  EXPECT_EQ(slos[0].bad, 1u);
}

TEST(HealthSlo, BurnRateAlertFiresOnSustainedFailureStreak) {
  obs::HealthEngine engine;
  // All transfers fail: burn = 1.0 / 0.1 = 10 ≥ threshold 2 on both
  // windows.  slo_burn is evaluated on sampler ticks, with the default
  // 2-tick pending hysteresis.
  for (int i = 0; i < 20; ++i) {
    engine.on_transfer_terminal(1000 + i, false, "link_blackout", 500);
  }
  engine.on_sample(60'000, {}, {});
  {
    const auto c = engine.counts();
    EXPECT_EQ(c.active_pending, 1u);
    EXPECT_EQ(c.fired, 0u);
  }
  engine.on_sample(120'000, {}, {});
  const auto burns = transitions_for(engine, "slo_burn");
  ASSERT_FALSE(burns.empty());
  EXPECT_EQ(burns.back().phase, obs::AlertPhase::kFiring);
  EXPECT_EQ(burns.back().entity, "slo:transfer_success");
}

// --- sampler-column watchdogs -----------------------------------------------

TEST(HealthDetectors, MatchRateDropAfterFlatTicks) {
  obs::HealthEngine engine;
  const std::vector<std::string> names = {
      "pandarus_match_candidates_scanned_total",
      "pandarus_match_jobs_matched_total"};
  std::int64_t candidates = 100;
  engine.on_sample(1000, names, {candidates, 50});
  // Candidates keep advancing while matched stays flat.
  for (int i = 1; i <= 4; ++i) {
    candidates += 100;
    engine.on_sample(1000 + 1000 * i, names, {candidates, 50});
  }
  const auto drops = transitions_for(engine, "match_rate_drop");
  ASSERT_FALSE(drops.empty());
  EXPECT_EQ(drops.back().phase, obs::AlertPhase::kFiring);

  // Matching resumes → instant resolve.
  engine.on_sample(9000, names, {candidates + 100, 51});
  EXPECT_EQ(transitions_for(engine, "match_rate_drop").back().phase,
            obs::AlertPhase::kResolved);
}

TEST(HealthDetectors, EventDropDeltaIsInstantCritical) {
  obs::HealthEngine engine;
  const std::vector<std::string> names = {"events_dropped"};
  engine.on_sample(1000, names, {0});
  EXPECT_EQ(engine.counts().fired, 0u);
  engine.on_sample(2000, names, {3});  // delta > 0
  const auto drops = transitions_for(engine, "event_drop");
  ASSERT_EQ(drops.size(), 2u);
  EXPECT_EQ(drops.back().phase, obs::AlertPhase::kFiring);
  EXPECT_EQ(drops.back().severity, "critical");
  engine.on_sample(3000, names, {3});  // flat again → resolve
  EXPECT_EQ(transitions_for(engine, "event_drop").back().phase,
            obs::AlertPhase::kResolved);
  // Integrity SLO saw one bad sampling interval.
  EXPECT_EQ(engine.slos()[2].bad, 1u);
}

// --- epoch reset ------------------------------------------------------------

TEST(HealthEngine, TimeRegressionResetsEpoch) {
  obs::HealthEngine engine;
  engine.on_breaker(50'000, 1, 2, true);
  EXPECT_EQ(engine.counts().active_firing, 1u);
  // A new campaign in the same process starts its clock over.
  engine.on_breaker(1000, 1, 2, false);
  const auto c = engine.counts();
  EXPECT_EQ(c.observations, 1u);  // reset, then this observation
  EXPECT_EQ(c.fired, 0u);
  EXPECT_EQ(c.active_firing, 0u);
  EXPECT_TRUE(engine.alerts().empty());
  EXPECT_TRUE(engine.transitions().empty());
}

// --- observe_json ↔ typed-feed parity ---------------------------------------

TEST(HealthEngine, ObserveJsonMatchesTypedFeeds) {
  obs::HealthEngine live;
  live.on_sample(1000, {"jobs_queued"}, {10});
  live.on_link_sample(1800, 0, 1, 5, 0.97);
  live.on_breaker(2000, 0, 1, true);
  live.on_transfer_terminal(3000, false, "stalled_terminal", 2000);
  live.on_transfer_terminal(4000, true, "none", 1500);

  const std::vector<std::string> lines = {
      R"({"ts":1000,"kind":"sample","entity":0,"jobs_queued":10})",
      R"({"ts":1800,"kind":"link_sample","entity":1,"src":0,"dst":1,)"
      R"("queued":5,"utilization":0.97})",
      R"({"ts":2000,"kind":"breaker_state","entity":7,"src":0,"dst":1,)"
      R"("state":"open"})",
      R"({"ts":3000,"kind":"transfer_fail","entity":9,"submitted":1000,)"
      R"("error":"stalled_terminal"})",
      R"({"ts":4000,"kind":"transfer_done","entity":10,"submitted":2500})",
      // Unknown kinds — including alert — must be ignored.
      R"({"ts":4100,"kind":"alert","entity":"link:0->1",)"
      R"("detector":"link_util_spike","phase":"resolved"})",
      R"({"ts":4200,"kind":"job_state","entity":3,"state":"running"})",
  };
  obs::HealthEngine replayed;
  replayed.set_emit_events(false);
  for (const std::string& line : lines) {
    const auto parsed = util::json::parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    replayed.observe_json(*parsed);
  }
  EXPECT_EQ(live.status_json(), replayed.status_json());
}

TEST(HealthEngine, StatusJsonIsWellFormed) {
  obs::HealthEngine engine;
  engine.on_link_sample(1000, 0, 1, 3, 1.0);
  engine.on_transfer_terminal(2000, true, "none", 100);
  const auto parsed = util::json::parse(engine.status_json());
  ASSERT_TRUE(parsed.has_value());
  const util::json::Value* counts = parsed->find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->get_int("observations"), 2);
  ASSERT_NE(parsed->find("alerts"), nullptr);
  ASSERT_NE(parsed->find("slos"), nullptr);
  EXPECT_EQ(parsed->find("slos")->arr.size(), 3u);
}

// --- gauges -----------------------------------------------------------------

TEST(HealthEngine, ExportsAlertAndBurnGauges) {
  obs::HealthEngine engine;
  engine.on_link_sample(1000, 4, 5, 2, 1.0);
  engine.on_sample(2000, {}, {});  // gauge export runs on sampler ticks
  const auto snapshot = obs::Registry::global().snapshot();
  EXPECT_EQ(snapshot.gauge_value("pandarus_health_alerts_firing"), 1);
  EXPECT_EQ(snapshot.gauge_value("pandarus_health_alerts_resolved_total"), 0);
}

// --- campaign-level guarantees ----------------------------------------------

scenario::ScenarioConfig chaos_config() {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.days = 0.25;
  config.seed = 20250401;
  config.faults.intensity = 2.0;
  config.with_self_healing();
  return config;
}

std::string strip_alert_lines(const std::string& ndjson) {
  std::string out;
  out.reserve(ndjson.size());
  std::istringstream in(ndjson);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"kind\":\"alert\"") == std::string::npos) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

TEST(HealthCampaign, AlertStripRestoresBaselineBytesAndReplayParity) {
  // Baseline: instrumented campaign without the health engine.
  obs::EventLog baseline_log;
  baseline_log.install();
  const auto baseline = scenario::run_campaign(chaos_config());
  baseline_log.uninstall();
  baseline_log.close();

  // Same campaign with the engine armed and alert emission on.
  obs::EventLog health_log;
  obs::HealthEngine engine;
  health_log.install();
  engine.install();
  const auto health_run = scenario::run_campaign(chaos_config());
  engine.uninstall();
  health_log.uninstall();
  health_log.close();

  // Armed detectors are read-only: the simulation is untouched.
  EXPECT_EQ(baseline.panda.finished, health_run.panda.finished);
  EXPECT_EQ(baseline.transfers.completed, health_run.transfers.completed);

  // The chaos campaign deterministically fires and resolves alerts.
  const auto counts = engine.counts();
  EXPECT_GE(counts.fired, 1u);
  EXPECT_GE(counts.resolved, 1u);

  // Stripping alert lines restores the baseline bytes exactly —
  // including the log_stats self-description (alerts ride sideband).
  const std::string health_ndjson = health_log.to_ndjson();
  EXPECT_EQ(strip_alert_lines(health_ndjson), baseline_log.to_ndjson());

  // Replaying the health-on stream derives the exact live state.
  TempFile file("health_campaign.ndjson");
  ASSERT_TRUE(health_log.write_ndjson(file.path()));
  const auto derived = analysis::derive_health_file(file.path());
  ASSERT_NE(derived, nullptr);
  EXPECT_EQ(derived->status_json(), engine.status_json());
}

TEST(HealthCampaign, SameSeedSameAlerts) {
  std::string first;
  for (int run = 0; run < 2; ++run) {
    obs::EventLog log;
    obs::HealthEngine engine;
    log.install();
    engine.install();
    (void)scenario::run_campaign(chaos_config());
    engine.uninstall();
    log.uninstall();
    log.close();
    if (run == 0) {
      first = engine.status_json();
    } else {
      EXPECT_EQ(engine.status_json(), first);
    }
  }
}

// --- concurrency (exercised under TSan in CI) -------------------------------

TEST(HealthEngine, ConcurrentFeedsAndSnapshots) {
  obs::HealthEngine engine;
  constexpr int kOps = 2000;
  std::thread links([&engine] {
    for (int i = 0; i < kOps; ++i) {
      engine.on_link_sample(1000, i % 4, (i + 1) % 4, i % 3,
                            (i % 10) / 10.0);
    }
  });
  std::thread transfers([&engine] {
    for (int i = 0; i < kOps; ++i) {
      engine.on_transfer_terminal(1000, i % 5 != 0,
                                  i % 5 == 0 ? "stalled_terminal" : "none",
                                  100 + i);
    }
  });
  std::thread readers([&engine] {
    for (int i = 0; i < 200; ++i) {
      (void)engine.status_json();
      (void)engine.counts();
      (void)engine.alerts();
      (void)engine.slos();
    }
  });
  links.join();
  transfers.join();
  readers.join();
  EXPECT_EQ(engine.counts().observations,
            static_cast<std::uint64_t>(2 * kOps));
}

}  // namespace
}  // namespace pandarus
