// Minimal JSON validator shared by the obs and event-replay tests:
// recursive descent over the full grammar; valid() is true iff the input
// is one well-formed JSON value with nothing but whitespace after it.
// Validation only — the library-side parser is util/json.hpp.
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace pandarus::testing {

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace pandarus::testing
