// Integration tests: full campaigns through scenario::run_campaign, with
// cross-module invariants (determinism, method inclusion, conservation,
// paper-shape properties) checked on the resulting telemetry.
#include <gtest/gtest.h>

#include "analysis/breakdown.hpp"
#include "analysis/heatmap.hpp"
#include "analysis/summary.hpp"
#include "core/parallel_driver.hpp"
#include "core/relaxed.hpp"
#include "core/windowed.hpp"
#include "scenario/campaign.hpp"

namespace pandarus::scenario {
namespace {

/// One shared small campaign for the read-only checks (building it per
/// test would dominate runtime).
const ScenarioResult& shared_result() {
  static const ScenarioResult result = [] {
    ScenarioConfig config = ScenarioConfig::small();
    config.seed = 20250401;
    return run_campaign(config);
  }();
  return result;
}

const core::TriMatchResult& shared_tri() {
  static const core::Matcher matcher(shared_result().store);
  static const core::TriMatchResult tri = core::run_all_methods(matcher);
  return tri;
}

TEST(Campaign, ProducesWork) {
  const ScenarioResult& r = shared_result();
  EXPECT_GT(r.workload.user_jobs, 100u);
  EXPECT_GT(r.workload.prod_jobs, 10u);
  EXPECT_GT(r.transfers.completed, 500u);
  EXPECT_GT(r.store.counts().jobs, 100u);
  EXPECT_GT(r.store.counts().transfers, 500u);
  EXPECT_GT(r.events_processed, 1000u);
}

TEST(Campaign, OnlyUserJobsRecorded) {
  const ScenarioResult& r = shared_result();
  // Job records cover user jobs plus resubmitted attempts (every attempt
  // leaves a record), minus corruption drops; never production jobs.
  EXPECT_LE(r.store.counts().jobs, r.workload.user_jobs + r.panda.retries);
  EXPECT_GT(r.store.counts().jobs, r.workload.user_jobs / 2);
  EXPECT_GT(r.panda.retries, 0u);
}

TEST(Campaign, JobRecordsHaveSaneTimes) {
  const ScenarioResult& r = shared_result();
  for (const auto& j : r.store.jobs()) {
    EXPECT_LE(j.creation_time, j.start_time);
    EXPECT_LE(j.start_time, j.end_time);
    EXPECT_GE(j.creation_time, 0);
    EXPECT_NE(j.computing_site, grid::kUnknownSite);
  }
}

TEST(Campaign, TransferRecordsHaveSaneSpans) {
  const ScenarioResult& r = shared_result();
  for (const auto& t : r.store.transfers()) {
    EXPECT_LT(t.started_at, t.finished_at);
    EXPECT_GT(t.file_size, 0u);
  }
}

TEST(Campaign, MostTasksReachTerminalStatus) {
  const ScenarioResult& r = shared_result();
  std::size_t finalized = 0;
  for (const auto& j : r.store.jobs()) {
    finalized += j.task_status != wms::TaskStatus::kRunning;
  }
  EXPECT_GT(finalized, r.store.jobs().size() * 9 / 10);
}

TEST(Campaign, DeterministicForSeed) {
  ScenarioConfig config = ScenarioConfig::small();
  config.days = 0.2;
  config.seed = 77;
  const ScenarioResult a = run_campaign(config);
  const ScenarioResult b = run_campaign(config);
  ASSERT_EQ(a.store.counts().jobs, b.store.counts().jobs);
  ASSERT_EQ(a.store.counts().transfers, b.store.counts().transfers);
  EXPECT_EQ(a.events_processed, b.events_processed);
  for (std::size_t i = 0; i < a.store.jobs().size(); ++i) {
    EXPECT_EQ(a.store.jobs()[i].pandaid, b.store.jobs()[i].pandaid);
    EXPECT_EQ(a.store.jobs()[i].end_time, b.store.jobs()[i].end_time);
    EXPECT_EQ(a.store.jobs()[i].error_code, b.store.jobs()[i].error_code);
  }
  for (std::size_t i = 0; i < a.store.transfers().size(); ++i) {
    EXPECT_EQ(a.store.transfers()[i].file_size,
              b.store.transfers()[i].file_size);
    EXPECT_EQ(a.store.transfers()[i].finished_at,
              b.store.transfers()[i].finished_at);
  }
}

TEST(Campaign, DifferentSeedsDiffer) {
  ScenarioConfig config = ScenarioConfig::small();
  config.days = 0.2;
  config.seed = 1;
  const auto a = run_campaign(config);
  config.seed = 2;
  const auto b = run_campaign(config);
  EXPECT_NE(a.events_processed, b.events_processed);
}

TEST(Matching, MethodInclusionHoldsCampaignWide) {
  const core::TriMatchResult& tri = shared_tri();
  EXPECT_LE(tri.exact.matched_job_count(), tri.rm1.matched_job_count());
  EXPECT_LE(tri.rm1.matched_job_count(), tri.rm2.matched_job_count());
  EXPECT_LE(tri.exact.matched_transfer_count(),
            tri.rm1.matched_transfer_count());
  EXPECT_LE(tri.rm1.matched_transfer_count(),
            tri.rm2.matched_transfer_count());
}

TEST(Matching, PerJobInclusionHolds) {
  const ScenarioResult& r = shared_result();
  const core::Matcher matcher(r.store);
  for (std::size_t i = 0; i < r.store.jobs().size(); i += 7) {
    const auto exact = matcher.match_job(i, core::MatchOptions::exact());
    const auto rm1 = matcher.match_job(i, core::MatchOptions::rm1());
    const auto rm2 = matcher.match_job(i, core::MatchOptions::rm2());
    EXPECT_TRUE(std::includes(rm1.transfer_indices.begin(),
                              rm1.transfer_indices.end(),
                              exact.transfer_indices.begin(),
                              exact.transfer_indices.end()));
    EXPECT_TRUE(std::includes(rm2.transfer_indices.begin(),
                              rm2.transfer_indices.end(),
                              rm1.transfer_indices.begin(),
                              rm1.transfer_indices.end()));
  }
}

TEST(Matching, ExactMatchedSetsSatisfyAlgorithmPredicate) {
  // Every exact-matched transfer must satisfy the per-transfer clauses
  // of Algorithm 1 against its job.
  const ScenarioResult& r = shared_result();
  for (const auto& m : shared_tri().exact.jobs) {
    const auto& job = r.store.jobs()[m.job_index];
    for (std::size_t ti : m.transfer_indices) {
      const auto& t = r.store.transfers()[ti];
      EXPECT_LT(t.started_at, job.end_time);
      EXPECT_EQ(t.jeditaskid, job.jeditaskid);
      if (t.is_download()) {
        EXPECT_EQ(t.destination_site, job.computing_site);
      } else {
        EXPECT_EQ(t.source_site, job.computing_site);
      }
    }
  }
}

TEST(Matching, ParallelDriverMatchesSerial) {
  const ScenarioResult& r = shared_result();
  const core::Matcher matcher(r.store);
  parallel::ThreadPool pool(4);
  const core::ParallelMatchDriver driver(matcher, pool);
  for (const auto options :
       {core::MatchOptions::exact(), core::MatchOptions::rm2()}) {
    const auto serial = matcher.run(options);
    const auto parallel_result = driver.run(options);
    ASSERT_EQ(serial.matched_job_count(), parallel_result.matched_job_count());
    for (std::size_t i = 0; i < serial.jobs.size(); ++i) {
      EXPECT_EQ(serial.jobs[i].job_index, parallel_result.jobs[i].job_index);
      EXPECT_EQ(serial.jobs[i].transfer_indices,
                parallel_result.jobs[i].transfer_indices);
    }
  }
}

TEST(Matching, WindowedMatcherEquivalentWithSufficientLookback) {
  // With lookback covering every job lifetime, windowed matching must
  // reproduce the global result exactly (the paper's pre-selection
  // soundness condition: "no shorter than the end-to-end lifetime of
  // the jobs of interest").
  const ScenarioResult& r = shared_result();
  util::SimDuration max_lifetime = 0;
  for (const auto& j : r.store.jobs()) {
    max_lifetime = std::max(max_lifetime, j.lifetime());
  }
  core::WindowedMatcher::Config config;
  config.window = util::hours(4);
  // Transfers may also start before job creation (pre-placement), so
  // cover the whole campaign span for strict equality.
  config.lookback = r.window_end + max_lifetime;
  const core::WindowedMatcher windowed(r.store, config);
  EXPECT_GT(windowed.window_count(), 1u);

  for (const auto options :
       {core::MatchOptions::exact(), core::MatchOptions::rm2()}) {
    const core::Matcher matcher(r.store);
    const auto global = matcher.run(options);
    const auto sliced = windowed.run(options);
    ASSERT_EQ(global.matched_job_count(), sliced.matched_job_count());
    for (std::size_t i = 0; i < global.jobs.size(); ++i) {
      EXPECT_EQ(global.jobs[i].job_index, sliced.jobs[i].job_index);
      EXPECT_EQ(global.jobs[i].transfer_indices,
                sliced.jobs[i].transfer_indices);
    }
  }
}

TEST(Matching, WindowedMatcherShortLookbackOnlyLosesMatches) {
  // An under-sized lookback may drop candidates (recall loss) but can
  // never invent matches that the global matcher would not produce...
  // except through the size-sum gate, which can *pass* on a truncated
  // candidate set.  RM1 has no gate, so RM1 windowed results must be a
  // subset of global RM1 per job.
  const ScenarioResult& r = shared_result();
  core::WindowedMatcher::Config config;
  config.window = util::hours(4);
  config.lookback = util::minutes(30);
  const core::WindowedMatcher windowed(r.store, config);
  const core::Matcher matcher(r.store);
  const auto global = matcher.run(core::MatchOptions::rm1());
  const auto sliced = windowed.run(core::MatchOptions::rm1());
  EXPECT_LE(sliced.matched_job_count(), global.matched_job_count());
  // Every sliced match is contained in the corresponding global match.
  std::size_t gi = 0;
  for (const auto& m : sliced.jobs) {
    while (gi < global.jobs.size() &&
           global.jobs[gi].job_index < m.job_index) {
      ++gi;
    }
    ASSERT_LT(gi, global.jobs.size());
    ASSERT_EQ(global.jobs[gi].job_index, m.job_index);
    EXPECT_TRUE(std::includes(global.jobs[gi].transfer_indices.begin(),
                              global.jobs[gi].transfer_indices.end(),
                              m.transfer_indices.begin(),
                              m.transfer_indices.end()));
  }
}

TEST(PaperShape, ExactMatchesAreMostlyLocal) {
  const ScenarioResult& r = shared_result();
  const auto cmp = analysis::compare_methods(r.store, shared_tri());
  // Only statistically meaningful on a large enough matched population;
  // the half-day small campaign sometimes matches only a few dozen.
  if (cmp.transfers[0].total() > 100) {
    EXPECT_GT(static_cast<double>(cmp.transfers[0].local),
              0.6 * static_cast<double>(cmp.transfers[0].total()));
  } else {
    EXPECT_GT(cmp.transfers[0].local, 0u);
  }
}

TEST(PaperShape, ProductionActivitiesNeverMatch) {
  const ScenarioResult& r = shared_result();
  const auto b = analysis::activity_breakdown(r.store, shared_tri().exact);
  EXPECT_EQ(
      b.rows[static_cast<std::size_t>(dms::Activity::kProductionUpload)]
          .matched,
      0u);
  EXPECT_EQ(
      b.rows[static_cast<std::size_t>(dms::Activity::kProductionDownload)]
          .matched,
      0u);
  EXPECT_GT(
      b.rows[static_cast<std::size_t>(dms::Activity::kProductionUpload)]
          .total,
      0u);
}

TEST(PaperShape, MatchedFractionIsSmall) {
  const ScenarioResult& r = shared_result();
  const auto s = analysis::overall_summary(r.store, shared_tri().exact);
  EXPECT_GT(s.matched_jobs, 0u);
  EXPECT_LT(s.matched_job_pct, 0.25);
  EXPECT_LT(s.matched_transfer_pct, 0.25);
}

TEST(PaperShape, LocalVolumeDominatesHeatmap) {
  const ScenarioResult& r = shared_result();
  const analysis::TransferHeatmap hm(r.store, r.topology);
  const auto s = hm.summary();
  EXPECT_GT(s.local_fraction(), 0.4);
  // Extreme spatial imbalance (paper §3.2): the largest cell dwarfs the
  // typical (geometric-mean) pair, and it sits on the diagonal.
  const auto top = hm.top_cells(1);
  ASSERT_FALSE(top.empty());
  EXPECT_GT(top[0].bytes, 20.0 * s.geomean_pair_bytes);
  EXPECT_TRUE(top[0].local);
}

TEST(PaperShape, FailedJobsExistWithPaperErrorCodes) {
  const ScenarioResult& r = shared_result();
  std::size_t failed = 0;
  bool any_known_code = false;
  for (const auto& j : r.store.jobs()) {
    if (!j.failed) continue;
    ++failed;
    if (j.error_code == wms::errors::kOverlay ||
        j.error_code == wms::errors::kStageInTimeout ||
        j.error_code == wms::errors::kExecutionFailure ||
        j.error_code == wms::errors::kLostHeartbeat ||
        j.error_code == wms::errors::kSiteServiceError ||
        j.error_code == wms::errors::kStageOutFailure) {
      any_known_code = true;
    }
  }
  EXPECT_GT(failed, 0u);
  EXPECT_TRUE(any_known_code);
  // The success rate should be high but not perfect (paper: 80.5% of
  // matched jobs successful; overall ATLAS success higher).
  EXPECT_LT(failed, r.store.jobs().size() / 2);
}

TEST(PaperShape, CorruptionReportNonTrivial) {
  const ScenarioResult& r = shared_result();
  EXPECT_GT(r.corruption.transfers_size_jittered, 0u);
  EXPECT_GT(r.corruption.transfers_destination_unknown, 0u);
  EXPECT_GT(r.corruption.file_records_dropped, 0u);
}

TEST(PaperShape, UnknownEndpointsFeedTheUnknownPseudoSite) {
  const ScenarioResult& r = shared_result();
  const analysis::TransferHeatmap hm(r.store, r.topology);
  const auto s = hm.summary();
  EXPECT_GT(s.unknown_bytes, 0.0);
}

TEST(Config, PresetsDiffer) {
  const auto small = ScenarioConfig::small();
  const auto paper = ScenarioConfig::paper_scale();
  const auto heatmap = ScenarioConfig::heatmap_campaign();
  EXPECT_LT(small.days, paper.days);
  EXPECT_GT(heatmap.days, paper.days);
  EXPECT_LT(small.topology.n_tier2, paper.topology.n_tier2);
}

}  // namespace
}  // namespace pandarus::scenario
