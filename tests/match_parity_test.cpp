// Parity tests for the matching core: the parallel driver and the
// parallel (two-pass sharded) index build must be observationally
// identical to their serial counterparts, deterministically, for every
// matching method.  Guards the MatchIndex refactor — any divergence in
// group contents, composite keys or merge order shows up here as a
// differing MatchedJob set.
#include <gtest/gtest.h>

#include "pandarus.hpp"

namespace {

using namespace pandarus;

const telemetry::MetadataStore& seeded_store() {
  static const scenario::ScenarioResult result = [] {
    scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
    config.days = 0.5;
    config.seed = 20260805;
    return scenario::run_campaign(config);
  }();
  return result.store;
}

const core::MatchOptions kMethods[] = {
    core::MatchOptions::exact(),
    core::MatchOptions::rm1(),
    core::MatchOptions::rm2(),
};

void expect_identical(const core::MatchResult& a, const core::MatchResult& b,
                      const char* label) {
  EXPECT_EQ(a.jobs_considered, b.jobs_considered) << label;
  ASSERT_EQ(a.jobs.size(), b.jobs.size()) << label;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const core::MatchedJob& x = a.jobs[i];
    const core::MatchedJob& y = b.jobs[i];
    EXPECT_EQ(x.job_index, y.job_index) << label << " job " << i;
    EXPECT_EQ(x.transfer_indices, y.transfer_indices)
        << label << " job_index " << x.job_index;
    EXPECT_EQ(x.local_transfers, y.local_transfers) << label;
    EXPECT_EQ(x.remote_transfers, y.remote_transfers) << label;
  }
}

TEST(MatchParity, ScenarioProducesWork) {
  const auto& store = seeded_store();
  ASSERT_GT(store.jobs().size(), 100u);
  ASSERT_GT(store.transfers().size(), 100u);
  // A parity test over an empty matched set would be vacuous.
  const core::Matcher matcher(store);
  EXPECT_GT(matcher.run(core::MatchOptions::rm2()).matched_job_count(), 0u);
}

TEST(MatchParity, ParallelDriverMatchesSerialRun) {
  const core::Matcher matcher(seeded_store());
  parallel::ThreadPool pool(4);
  const core::ParallelMatchDriver driver(matcher, pool);
  for (const auto& options : kMethods) {
    const auto serial = matcher.run(options);
    const auto parallel_result = driver.run(options);
    expect_identical(serial, parallel_result,
                     core::method_name(options.method));
  }
}

TEST(MatchParity, ParallelDriverIsDeterministicAcrossRuns) {
  const core::Matcher matcher(seeded_store());
  parallel::ThreadPool pool(4);
  const core::ParallelMatchDriver driver(matcher, pool);
  const auto first = driver.run(core::MatchOptions::rm2());
  for (int run = 0; run < 3; ++run) {
    expect_identical(first, driver.run(core::MatchOptions::rm2()),
                     "repeat parallel run");
  }
}

TEST(MatchParity, PoolBuiltIndexMatchesSerialBuild) {
  const auto& store = seeded_store();
  const core::Matcher serial_built(store);
  parallel::ThreadPool pool(3);  // odd count: uneven chunk boundaries
  const core::Matcher pool_built(store, pool);
  for (const auto& options : kMethods) {
    expect_identical(serial_built.run(options), pool_built.run(options),
                     core::method_name(options.method));
  }
}

TEST(MatchParity, SharedIndexAcrossMatchers) {
  // Matchers constructed over the same shared index agree with a
  // matcher that built its own.
  const auto& store = seeded_store();
  const auto index = std::make_shared<const core::MatchIndex>(store);
  const core::Matcher a{index};
  const core::Matcher own(store);
  expect_identical(own.run(core::MatchOptions::exact()),
                   a.run(core::MatchOptions::exact()), "shared index");
}

}  // namespace
