// Minimal Prometheus text-exposition validator, sibling of
// json_validator.hpp: checks line shape, metric-name syntax, label-block
// syntax, that values parse as doubles, and that every family carries
// `# HELP` and `# TYPE` exactly once, before its first sample.
// Histogram `_bucket`/`_sum`/`_count` suffixes resolve to the declaring
// family.  Validation only — the library-side exporter is
// obs::export_prometheus.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>

namespace pandarus::testing {

class PromTextValidator {
 public:
  explicit PromTextValidator(std::string_view text) : text_(text) {}

  /// True iff every line is well formed and the HELP/TYPE discipline
  /// holds; error() describes the first violation.
  bool valid() {
    std::size_t pos = 0;
    std::size_t line_no = 0;
    while (pos < text_.size()) {
      std::size_t end = text_.find('\n', pos);
      if (end == std::string_view::npos) end = text_.size();
      ++line_no;
      if (!check_line(text_.substr(pos, end - pos))) {
        error_ = "line " + std::to_string(line_no) + ": " + error_;
        return false;
      }
      pos = end + 1;
    }
    return true;
  }

  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  struct Family {
    bool helped = false;
    bool typed = false;
    bool sampled = false;
    std::string type;
  };

  static bool name_char(char c, bool first) noexcept {
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
        c == ':') {
      return true;
    }
    return !first && std::isdigit(static_cast<unsigned char>(c)) != 0;
  }

  static bool valid_name(std::string_view name) noexcept {
    if (name.empty()) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      if (!name_char(name[i], i == 0)) return false;
    }
    return true;
  }

  bool check_line(std::string_view line) {
    if (line.empty()) return true;  // blank lines are legal
    if (line[0] == '#') return check_comment(line);
    return check_sample(line);
  }

  bool check_comment(std::string_view line) {
    // "# HELP <name> <text>" / "# TYPE <name> <kind>"; any other
    // comment is free-form and ignored.
    if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
      return true;
    }
    const bool is_help = line.rfind("# HELP ", 0) == 0;
    std::string_view rest = line.substr(7);
    const std::size_t sp = rest.find(' ');
    const std::string_view name =
        sp == std::string_view::npos ? rest : rest.substr(0, sp);
    if (!valid_name(name)) {
      error_ = "bad metric name in comment: '" + std::string(name) + "'";
      return false;
    }
    Family& family = families_[std::string(name)];
    if (family.sampled) {
      error_ = std::string(is_help ? "HELP" : "TYPE") + " for '" +
               std::string(name) + "' after its first sample";
      return false;
    }
    if (is_help) {
      if (family.helped) {
        error_ = "duplicate HELP for '" + std::string(name) + "'";
        return false;
      }
      family.helped = true;
      return true;
    }
    if (family.typed) {
      error_ = "duplicate TYPE for '" + std::string(name) + "'";
      return false;
    }
    const std::string_view kind =
        sp == std::string_view::npos ? std::string_view{} : rest.substr(sp + 1);
    if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
        kind != "summary" && kind != "untyped") {
      error_ = "bad TYPE kind '" + std::string(kind) + "' for '" +
               std::string(name) + "'";
      return false;
    }
    family.typed = true;
    family.type = std::string(kind);
    return true;
  }

  bool check_sample(std::string_view line) {
    // <name>[{labels}] <value>[ <timestamp>]
    std::size_t i = 0;
    while (i < line.size() && name_char(line[i], i == 0)) ++i;
    const std::string_view name = line.substr(0, i);
    if (!valid_name(name)) {
      error_ = "bad sample metric name";
      return false;
    }
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string_view::npos) {
        error_ = "unterminated label block for '" + std::string(name) + "'";
        return false;
      }
      if (!check_labels(line.substr(i + 1, close - i - 1))) return false;
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      error_ = "missing value for '" + std::string(name) + "'";
      return false;
    }
    const std::string value(line.substr(i + 1));
    if (value.empty() || value.find(' ') != std::string::npos) {
      error_ = "malformed value field for '" + std::string(name) + "'";
      return false;
    }
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* parse_end = nullptr;
      std::strtod(value.c_str(), &parse_end);
      if (parse_end == value.c_str() || *parse_end != '\0') {
        error_ = "value '" + value + "' for '" + std::string(name) +
                 "' is not a number";
        return false;
      }
    }
    return note_sample(name);
  }

  bool check_labels(std::string_view labels) {
    // name="value",... — escapes \\ \" \n inside values.
    std::size_t i = 0;
    while (i < labels.size()) {
      std::size_t start = i;
      while (i < labels.size() && name_char(labels[i], i == start)) ++i;
      if (i == start || i >= labels.size() || labels[i] != '=') {
        error_ = "bad label name in '" + std::string(labels) + "'";
        return false;
      }
      ++i;
      if (i >= labels.size() || labels[i] != '"') {
        error_ = "label value must be quoted in '" + std::string(labels) + "'";
        return false;
      }
      ++i;
      while (i < labels.size() && labels[i] != '"') {
        if (labels[i] == '\\') ++i;
        ++i;
      }
      if (i >= labels.size()) {
        error_ = "unterminated label value in '" + std::string(labels) + "'";
        return false;
      }
      ++i;  // closing quote
      if (i < labels.size()) {
        if (labels[i] != ',') {
          error_ = "expected ',' between labels in '" + std::string(labels) +
                   "'";
          return false;
        }
        ++i;
      }
    }
    return true;
  }

  /// Resolves the declaring family for a sample name (histogram series
  /// carry _bucket/_sum/_count suffixes) and enforces HELP+TYPE-first.
  bool note_sample(std::string_view name) {
    std::string family(name);
    if (families_.find(family) == families_.end()) {
      for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
        if (name.size() > suffix.size() &&
            name.substr(name.size() - suffix.size()) == suffix) {
          const std::string base(name.substr(0, name.size() - suffix.size()));
          const auto it = families_.find(base);
          if (it != families_.end() && it->second.type == "histogram") {
            family = base;
            break;
          }
        }
      }
    }
    const auto it = families_.find(family);
    if (it == families_.end() || !it->second.typed || !it->second.helped) {
      error_ = "sample '" + std::string(name) +
               "' without preceding HELP and TYPE";
      return false;
    }
    it->second.sampled = true;
    return true;
  }

  std::string_view text_;
  std::string error_;
  std::map<std::string, Family> families_;
};

}  // namespace pandarus::testing
