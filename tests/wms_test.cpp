// Unit/integration tests for the PanDA-like workload substrate:
// brokerage policies, site queues, the job lifecycle through the
// PandaServer, staging behaviour and error injection.
#include <gtest/gtest.h>

#include "dms/rule.hpp"
#include "grid/builder.hpp"
#include "sim/scheduler.hpp"
#include "wms/brokerage.hpp"
#include "wms/panda_server.hpp"
#include "wms/site_queue.hpp"
#include "wms/workload.hpp"

namespace pandarus::wms {
namespace {

struct World {
  grid::Topology topo;
  dms::RseRegistry rses;
  dms::FileCatalog catalog;
  dms::ReplicaCatalog replicas{catalog, rses};
  sim::Scheduler scheduler;

  grid::SiteId t0, t1, t2;
  dms::RseId t0_disk, t0_tape, t1_disk, t2_disk;

  World() {
    auto add = [&](const char* name, grid::Tier tier,
                   std::uint32_t slots) {
      grid::Site s;
      s.name = name;
      s.tier = tier;
      s.cpu_slots = slots;
      s.cpu_speed = 1.0;
      s.storage_bytes = 1'000'000'000'000ULL;
      s.lan_bandwidth_bps = 1e9;
      s.batch_delay_mean_ms = 1'000.0;
      s.base_failure_prob = 0.0;
      return topo.add_site(s);
    };
    t0 = add("T0", grid::Tier::kT0, 64);
    t1 = add("T1", grid::Tier::kT1, 32);
    t2 = add("T2", grid::Tier::kT2, 16);
    for (grid::SiteId i = 0; i < 3; ++i) {
      for (grid::SiteId j = 0; j < 3; ++j) {
        grid::NetworkLink link;
        link.key = {i, j};
        link.capacity_bps = i == j ? 1e9 : 200e6;
        link.latency_ms = 1.0;
        link.max_active = 4;
        grid::LoadModel::Params quiet;
        quiet.mean_util = 0.0;
        quiet.diurnal_amplitude = 0.0;
        quiet.burst_prob = 0.0;
        link.load = grid::LoadModel(quiet);
        topo.add_link(link);
      }
    }
    auto add_rse = [&](const char* name, grid::SiteId site,
                       dms::RseKind kind) {
      dms::Rse r;
      r.name = name;
      r.site = site;
      r.kind = kind;
      return rses.add(std::move(r));
    };
    t0_disk = add_rse("T0_DISK", t0, dms::RseKind::kDisk);
    t0_tape = add_rse("T0_TAPE", t0, dms::RseKind::kTape);
    t1_disk = add_rse("T1_DISK", t1, dms::RseKind::kDisk);
    t2_disk = add_rse("T2_DISK", t2, dms::RseKind::kDisk);
  }
};

TEST(Errors, MessagesExist) {
  EXPECT_STREQ(errors::message(errors::kOverlay),
               "Non-zero return code from Overlay (1)");
  EXPECT_STREQ(errors::message(errors::kNone), "OK");
  EXPECT_STREQ(errors::message(424242), "Unknown error");
}

TEST(Job, DerivedTimes) {
  Job j;
  j.creation_time = 100;
  j.start_time = 400;
  j.end_time = 1000;
  EXPECT_EQ(j.queuing_time(), 300);
  EXPECT_EQ(j.wall_time(), 600);
}

TEST(SiteQueues, AdmitsUpToSlots) {
  World w;
  SiteQueues queues(w.scheduler, w.topo, util::Rng(1));
  int started = 0;
  for (int i = 0; i < 20; ++i) {
    queues.request_slot(w.t2, [&] { ++started; });
  }
  // 16 slots at T2: 16 admitted (after pilot delay), 4 queued.
  EXPECT_EQ(queues.running(w.t2), 16u);
  EXPECT_EQ(queues.queued(w.t2), 4u);
  w.scheduler.run();
  EXPECT_EQ(started, 16);
  for (int i = 0; i < 4; ++i) queues.release_slot(w.t2);
  w.scheduler.run();
  EXPECT_EQ(started, 20);
}

TEST(SiteQueues, HigherPriorityAdmittedFirst) {
  World w;
  // One-slot site: admissions serialize.
  grid::Site tiny;
  tiny.name = "TINY";
  tiny.cpu_slots = 1;
  tiny.batch_delay_mean_ms = 10.0;
  const grid::SiteId site = w.topo.add_site(tiny);
  SiteQueues queues(w.scheduler, w.topo, util::Rng(1));

  std::vector<int> order;
  // Fill the slot, then enqueue mixed priorities while it is busy.
  queues.request_slot(site, [&] { order.push_back(0); }, 0);
  queues.request_slot(site, [&] { order.push_back(1); }, 100);
  queues.request_slot(site, [&] { order.push_back(2); }, 900);
  queues.request_slot(site, [&] { order.push_back(3); }, 100);
  // Drain: release after each start.
  for (int i = 0; i < 4; ++i) {
    w.scheduler.run();
    queues.release_slot(site);
  }
  // Highest priority first; FIFO within equal priority.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1, 3}));
}

TEST(SiteQueues, EstimatedWaitGrowsWithBacklog) {
  World w;
  SiteQueues queues(w.scheduler, w.topo, util::Rng(1));
  const double idle = queues.estimated_wait_ms(w.t2);
  for (int i = 0; i < 40; ++i) queues.request_slot(w.t2, [] {});
  EXPECT_GT(queues.estimated_wait_ms(w.t2), idle);
}

Job make_job(World& w, JobId id, TaskId task, std::uint32_t n_files,
             std::uint64_t file_size = 1'000'000) {
  Job j;
  j.pandaid = id;
  j.jeditaskid = task;
  j.kind = JobKind::kUserAnalysis;
  j.base_exec_ms = 60'000;
  const dms::DatasetId ds = w.catalog.create_dataset(
      "mc23", "wmstest." + std::to_string(id));
  for (std::uint32_t i = 0; i < n_files; ++i) {
    const dms::FileId f = w.catalog.add_file(ds, file_size);
    j.input_files.push_back(f);
    j.ninputfilebytes += file_size;
  }
  return j;
}

TEST(Brokerage, DataLocalityFollowsReplicas) {
  World w;
  SiteQueues queues(w.scheduler, w.topo, util::Rng(1));
  Brokerage broker(w.topo, w.catalog, w.replicas, Brokerage::Params{});
  util::Rng rng(3);
  Job j = make_job(w, 1, 10, 3);
  for (dms::FileId f : j.input_files) w.replicas.add_replica(f, w.t1_disk);
  EXPECT_EQ(broker.choose_site(j, queues, rng), w.t1);
}

TEST(Brokerage, TapeResidencyAttractsWithDiscount) {
  World w;
  SiteQueues queues(w.scheduler, w.topo, util::Rng(1));
  Brokerage broker(w.topo, w.catalog, w.replicas, Brokerage::Params{});
  util::Rng rng(3);
  Job j = make_job(w, 1, 10, 3);
  // Data only on tape at T0: T0 should still win (0.4 weight beats 0).
  for (dms::FileId f : j.input_files) w.replicas.add_replica(f, w.t0_tape);
  EXPECT_EQ(broker.choose_site(j, queues, rng), w.t0);
}

TEST(Brokerage, DiskBeatsTape) {
  World w;
  SiteQueues queues(w.scheduler, w.topo, util::Rng(1));
  Brokerage broker(w.topo, w.catalog, w.replicas, Brokerage::Params{});
  util::Rng rng(3);
  Job j = make_job(w, 1, 10, 3);
  for (dms::FileId f : j.input_files) {
    w.replicas.add_replica(f, w.t0_tape);
    w.replicas.add_replica(f, w.t2_disk);
  }
  EXPECT_EQ(broker.choose_site(j, queues, rng), w.t2);
}

TEST(Brokerage, LoadAwareAvoidsBusySite) {
  World w;
  SiteQueues queues(w.scheduler, w.topo, util::Rng(1));
  Brokerage::Params params;
  params.policy = BrokeragePolicy::kLoadAware;
  Brokerage broker(w.topo, w.catalog, w.replicas, params);
  util::Rng rng(3);
  // Flood T0 with queued work.
  for (int i = 0; i < 500; ++i) queues.request_slot(w.t0, [] {});
  Job j = make_job(w, 1, 10, 1);
  const grid::SiteId chosen = broker.choose_site(j, queues, rng);
  EXPECT_NE(chosen, w.t0);
}

TEST(Brokerage, ProductionExcludedFromT3) {
  World w;
  grid::Site t3;
  t3.name = "T3";
  t3.tier = grid::Tier::kT3;
  t3.cpu_slots = 1'000'000;  // hugely attractive by idle capacity
  const grid::SiteId t3_id = w.topo.add_site(t3);
  SiteQueues queues(w.scheduler, w.topo, util::Rng(1));
  Brokerage broker(w.topo, w.catalog, w.replicas, Brokerage::Params{});
  util::Rng rng(3);
  Job j = make_job(w, 1, 10, 0);
  j.kind = JobKind::kProduction;
  EXPECT_NE(broker.choose_site(j, queues, rng), t3_id);
}

TEST(PolicyNames, AllDistinct) {
  EXPECT_STREQ(policy_name(BrokeragePolicy::kDataLocality), "data-locality");
  EXPECT_STREQ(policy_name(BrokeragePolicy::kLoadAware), "load-aware");
  EXPECT_STREQ(policy_name(BrokeragePolicy::kHybrid), "hybrid");
}

/// Full lifecycle harness around PandaServer.
struct ServerFixture {
  World w;
  dms::TransferEngine engine;
  Brokerage broker;
  SiteQueues queues;
  std::vector<Job> completed;
  std::vector<Task> completed_tasks;
  std::vector<dms::TransferOutcome> outcomes;
  PandaServer server;

  explicit ServerFixture(PandaServer::Params params = quiet_params(),
                         dms::TransferEngine::Params engine_params =
                             quiet_engine())
      : engine(w.scheduler, w.topo, w.replicas, util::Rng(1), engine_params),
        broker(w.topo, w.catalog, w.replicas, Brokerage::Params{}),
        queues(w.scheduler, w.topo, util::Rng(2)),
        server(w.scheduler, w.topo, w.catalog, w.replicas, w.rses, engine,
               broker, queues, util::Rng(3), params, make_hooks()) {
    engine.set_sink(
        [this](const dms::TransferOutcome& o) { outcomes.push_back(o); });
  }

  static PandaServer::Params quiet_params() {
    PandaServer::Params p;
    p.p_direct_io = 0.0;
    p.p_analysis_upload = 0.0;
    p.p_production_upload = 0.0;
    p.p_retry = 0.0;
    return p;
  }
  static dms::TransferEngine::Params quiet_engine() {
    dms::TransferEngine::Params p;
    p.failure_prob = 0.0;
    p.stall_prob = 0.0;
    p.registration_failure_prob = 0.0;
    return p;
  }
  PandaServer::Hooks make_hooks() {
    PandaServer::Hooks hooks;
    hooks.on_job_complete = [this](const Job& j) { completed.push_back(j); };
    hooks.on_task_complete = [this](const Task& t) {
      completed_tasks.push_back(t);
    };
    return hooks;
  }

  Task make_task(TaskId id, std::uint32_t total) {
    Task t;
    t.jeditaskid = id;
    t.total_jobs = total;
    return t;
  }
};

TEST(PandaServer, LocalJobRunsWithoutTransfers) {
  ServerFixture fx;
  fx.server.submit_task(fx.make_task(10, 1));
  Job j = make_job(fx.w, 1, 10, 2);
  for (dms::FileId f : j.input_files) {
    fx.w.replicas.add_replica(f, fx.w.t1_disk);
  }
  fx.w.scheduler.schedule_at(0, [&, j = std::move(j)]() mutable {
    fx.server.submit_job(std::move(j));
  });
  fx.w.scheduler.run();

  ASSERT_EQ(fx.completed.size(), 1u);
  const Job& done = fx.completed[0];
  EXPECT_EQ(done.status, JobStatus::kFinished);
  EXPECT_EQ(done.computing_site, fx.w.t1);
  EXPECT_TRUE(fx.outcomes.empty());  // nothing to stage, no uploads
  EXPECT_GT(done.start_time, done.creation_time);  // pilot delay
  EXPECT_GT(done.end_time, done.start_time);
  ASSERT_EQ(fx.completed_tasks.size(), 1u);
  EXPECT_EQ(fx.completed_tasks[0].status, TaskStatus::kDone);
}

TEST(PandaServer, MissingInputsAreStagedBeforeStart) {
  ServerFixture fx;
  fx.server.submit_task(fx.make_task(10, 1));
  Job j = make_job(fx.w, 1, 10, 2, 100'000'000);
  // Replicas only at T0 disk; brokerage sends the job there... unless we
  // force it remote by removing eligibility.  Instead put data at T0 and
  // watch the job stage nothing (local).  For a true staging test, give
  // the files replicas ONLY at t0 tape so even at T0 a local tape->disk
  // staging pass is required.
  for (dms::FileId f : j.input_files) {
    fx.w.replicas.add_replica(f, fx.w.t0_tape);
  }
  fx.w.scheduler.schedule_at(0, [&, j = std::move(j)]() mutable {
    fx.server.submit_job(std::move(j));
  });
  fx.w.scheduler.run();

  ASSERT_EQ(fx.completed.size(), 1u);
  const Job& done = fx.completed[0];
  EXPECT_EQ(done.computing_site, fx.w.t0);
  EXPECT_EQ(fx.server.stats().stage_in_transfers, 2u);
  ASSERT_EQ(fx.outcomes.size(), 2u);
  for (const auto& o : fx.outcomes) {
    EXPECT_EQ(o.activity, dms::Activity::kAnalysisDownload);
    EXPECT_TRUE(o.src == fx.w.t0 && o.dst == fx.w.t0);  // tape -> disk
    EXPECT_EQ(o.jeditaskid, 10);
    // Staging completed before the payload started.
    EXPECT_LE(o.finished_at, done.start_time);
  }
}

TEST(PandaServer, SharedStagingDeduplicates) {
  ServerFixture fx;
  fx.server.submit_task(fx.make_task(10, 2));
  Job a = make_job(fx.w, 1, 10, 2, 50'000'000);
  Job b;  // same files as a
  b.pandaid = 2;
  b.jeditaskid = 10;
  b.kind = JobKind::kUserAnalysis;
  b.base_exec_ms = 60'000;
  b.input_files = a.input_files;
  b.ninputfilebytes = a.ninputfilebytes;
  for (dms::FileId f : a.input_files) {
    fx.w.replicas.add_replica(f, fx.w.t0_tape);
  }
  fx.w.scheduler.schedule_at(0, [&, a = std::move(a)]() mutable {
    fx.server.submit_job(std::move(a));
  });
  fx.w.scheduler.schedule_at(10, [&, b = std::move(b)]() mutable {
    fx.server.submit_job(std::move(b));
  });
  fx.w.scheduler.run();

  EXPECT_EQ(fx.completed.size(), 2u);
  // Two files staged once each, second job joined as waiter.
  EXPECT_EQ(fx.server.stats().stage_in_transfers, 2u);
  EXPECT_EQ(fx.server.stats().shared_stage_hits, 2u);
}

TEST(PandaServer, DirectIoStreamsDuringExecution) {
  PandaServer::Params params = ServerFixture::quiet_params();
  params.p_direct_io = 1.0;
  ServerFixture fx(params);
  fx.server.submit_task(fx.make_task(10, 1));
  Job j = make_job(fx.w, 1, 10, 2, 50'000'000);
  for (dms::FileId f : j.input_files) {
    fx.w.replicas.add_replica(f, fx.w.t1_disk);
  }
  fx.w.scheduler.schedule_at(0, [&, j = std::move(j)]() mutable {
    fx.server.submit_job(std::move(j));
  });
  fx.w.scheduler.run();

  ASSERT_EQ(fx.completed.size(), 1u);
  const Job& done = fx.completed[0];
  EXPECT_TRUE(done.direct_io);
  ASSERT_EQ(fx.outcomes.size(), 2u);
  for (const auto& o : fx.outcomes) {
    EXPECT_EQ(o.activity, dms::Activity::kAnalysisDownloadDirectIO);
    // Streams start with (or after) the payload.
    EXPECT_GE(o.started_at, done.start_time);
    EXPECT_EQ(o.pandaid, done.pandaid);
  }
  // Direct-IO streams do not create replicas.
  for (dms::FileId f : fx.completed[0].input_files) {
    EXPECT_FALSE(fx.w.replicas.has_replica(f, fx.w.t0_disk));
  }
}

TEST(PandaServer, UploadDelaysEndTimeUntilStageOut) {
  PandaServer::Params params = ServerFixture::quiet_params();
  params.p_analysis_upload = 1.0;
  ServerFixture fx(params);
  fx.server.submit_task(fx.make_task(10, 1));
  Job j = make_job(fx.w, 1, 10, 1, 1'000'000);
  for (dms::FileId f : j.input_files) {
    fx.w.replicas.add_replica(f, fx.w.t1_disk);
  }
  const dms::FileId out =
      fx.w.catalog.add_file(fx.w.catalog.file(j.input_files[0]).dataset,
                            400'000'000);
  j.output_files.push_back(out);
  j.noutputfilebytes = 400'000'000;
  fx.w.scheduler.schedule_at(0, [&, j = std::move(j)]() mutable {
    fx.server.submit_job(std::move(j));
  });
  fx.w.scheduler.run();

  ASSERT_EQ(fx.completed.size(), 1u);
  ASSERT_EQ(fx.outcomes.size(), 1u);
  const auto& upload = fx.outcomes[0];
  EXPECT_EQ(upload.activity, dms::Activity::kAnalysisUpload);
  EXPECT_EQ(upload.src, fx.completed[0].computing_site);
  // The job record closes only after stage-out (paper: uploads start
  // before the recorded end time, which is why they match at 95%).
  EXPECT_LE(upload.started_at, fx.completed[0].end_time);
  EXPECT_LE(upload.finished_at, fx.completed[0].end_time);
  EXPECT_EQ(fx.server.stats().upload_transfers, 1u);
}

TEST(PandaServer, StageFailureFailsJobWithStageInError) {
  PandaServer::Params params = ServerFixture::quiet_params();
  params.stage_fail_job_prob = 1.0;
  dms::TransferEngine::Params engine_params = ServerFixture::quiet_engine();
  engine_params.failure_prob = 1.0;
  engine_params.max_attempts = 1;
  ServerFixture fx(params, engine_params);
  fx.server.submit_task(fx.make_task(10, 1));
  Job j = make_job(fx.w, 1, 10, 1, 1'000'000);
  fx.w.replicas.add_replica(j.input_files[0], fx.w.t0_tape);
  fx.w.scheduler.schedule_at(0, [&, j = std::move(j)]() mutable {
    fx.server.submit_job(std::move(j));
  });
  fx.w.scheduler.run();

  ASSERT_EQ(fx.completed.size(), 1u);
  EXPECT_EQ(fx.completed[0].status, JobStatus::kFailed);
  EXPECT_EQ(fx.completed[0].error_code, errors::kStageInTimeout);
  ASSERT_EQ(fx.completed_tasks.size(), 1u);
  EXPECT_EQ(fx.completed_tasks[0].status, TaskStatus::kFailed);
}

TEST(PandaServer, WatchdogReleasesStuckStaging) {
  PandaServer::Params params = ServerFixture::quiet_params();
  params.stage_timeout = util::minutes(5);
  params.overlay_failure_prob = 0.0;  // survive to check the timing
  dms::TransferEngine::Params engine_params = ServerFixture::quiet_engine();
  engine_params.stall_prob = 1.0;
  engine_params.stall_factor_min = 0.001;  // crawling transfer
  engine_params.stall_factor_max = 0.001;
  ServerFixture fx(params, engine_params);
  fx.server.submit_task(fx.make_task(10, 1));
  Job j = make_job(fx.w, 1, 10, 1, 2'000'000'000);
  fx.w.replicas.add_replica(j.input_files[0], fx.w.t0_tape);
  fx.w.scheduler.schedule_at(0, [&, j = std::move(j)]() mutable {
    fx.server.submit_job(std::move(j));
  });
  fx.w.scheduler.run();

  ASSERT_EQ(fx.completed.size(), 1u);
  EXPECT_EQ(fx.server.stats().stage_timeouts, 1u);
  // The transfer outlived the job's start: the Fig. 11 anomaly.
  ASSERT_FALSE(fx.outcomes.empty());
  EXPECT_GT(fx.outcomes[0].finished_at, fx.completed[0].start_time);
}

TEST(PandaServer, FailedJobIsRetriedAsFreshPandaid) {
  PandaServer::Params params = ServerFixture::quiet_params();
  params.p_retry = 1.0;
  params.max_job_attempts = 2;
  params.stage_fail_job_prob = 1.0;
  dms::TransferEngine::Params engine_params = ServerFixture::quiet_engine();
  engine_params.failure_prob = 1.0;  // staging always fails -> job fails
  engine_params.max_attempts = 1;
  ServerFixture fx(params, engine_params);
  fx.server.submit_task(fx.make_task(10, 1));
  Job j = make_job(fx.w, 1, 10, 1, 1'000'000);
  fx.w.replicas.add_replica(j.input_files[0], fx.w.t0_tape);
  fx.w.scheduler.schedule_at(0, [&, j = std::move(j)]() mutable {
    fx.server.submit_job(std::move(j));
  });
  fx.w.scheduler.run();

  // Two attempts recorded: the original and one retry, both failed.
  ASSERT_EQ(fx.completed.size(), 2u);
  EXPECT_EQ(fx.completed[0].pandaid, 1);
  EXPECT_EQ(fx.completed[0].attempt, 1u);
  EXPECT_GE(fx.completed[1].pandaid, 9'000'000'000);
  EXPECT_EQ(fx.completed[1].attempt, 2u);
  EXPECT_EQ(fx.server.stats().retries, 1u);
  // The task reached a terminal state exactly once (on the last attempt).
  ASSERT_EQ(fx.completed_tasks.size(), 1u);
  EXPECT_EQ(fx.completed_tasks[0].status, TaskStatus::kFailed);
}

TEST(PandaServer, RetrySuccessMakesTaskSucceed) {
  PandaServer::Params params = ServerFixture::quiet_params();
  params.p_retry = 1.0;
  params.max_job_attempts = 3;
  params.stage_fail_job_prob = 1.0;
  // First staging attempt fails terminally; the catalog never learns the
  // replica, but the retry re-stages and (with failure injection off for
  // the second engine attempt) succeeds.  Easiest deterministic setup:
  // transfers always succeed, but force failure via direct_io_failed
  // path being off and base failure 1.0 on one site... instead, fail via
  // stage: impossible to flip mid-run.  So emulate: first attempt fails
  // because the only replica is missing (no source), retry succeeds
  // after we add a replica at a scheduled time.
  ServerFixture fx(params);
  fx.server.submit_task(fx.make_task(10, 1));
  Job j = make_job(fx.w, 1, 10, 1, 1'000'000);
  const dms::FileId file = j.input_files[0];
  // No replica at all: attempt 1 fails staging instantly.
  fx.w.scheduler.schedule_at(0, [&, j = std::move(j)]() mutable {
    fx.server.submit_job(std::move(j));
  });
  // By the time the retry runs, the file exists on disk somewhere.
  // (Attempt 1's staging fails instantly at t=0: no replica anywhere.)
  fx.w.scheduler.schedule_at(util::seconds(1), [&] {
    fx.w.replicas.add_replica(file, fx.w.t1_disk);
  });
  fx.w.scheduler.run();

  ASSERT_GE(fx.completed.size(), 2u);
  EXPECT_TRUE(fx.completed[0].status == JobStatus::kFailed);
  EXPECT_EQ(fx.completed.back().status, JobStatus::kFinished);
  ASSERT_EQ(fx.completed_tasks.size(), 1u);
  EXPECT_EQ(fx.completed_tasks[0].status, TaskStatus::kDone);
}

TEST(PandaServer, SequentialPilotStagesFilesBackToBack) {
  ServerFixture fx;
  // Make T0 a sequential-pilot site.
  fx.w.topo.site_mutable(fx.w.t0).max_parallel_streams = 1;
  fx.server.submit_task(fx.make_task(10, 1));
  Job j = make_job(fx.w, 1, 10, 3, 100'000'000);
  for (dms::FileId f : j.input_files) {
    fx.w.replicas.add_replica(f, fx.w.t0_tape);
  }
  fx.w.scheduler.schedule_at(0, [&, j = std::move(j)]() mutable {
    fx.server.submit_job(std::move(j));
  });
  fx.w.scheduler.run();

  ASSERT_EQ(fx.completed.size(), 1u);
  ASSERT_EQ(fx.outcomes.size(), 3u);
  // Back-to-back: each transfer starts only after the previous finished,
  // even though the local link admits several concurrent transfers.
  for (std::size_t i = 1; i < fx.outcomes.size(); ++i) {
    EXPECT_GE(fx.outcomes[i].started_at, fx.outcomes[i - 1].finished_at);
  }
  EXPECT_EQ(fx.completed[0].status, JobStatus::kFinished);
}

TEST(PandaServer, DatasetLevelPrefetchPullsSiblingsFiles) {
  PandaServer::Params params = ServerFixture::quiet_params();
  params.dataset_level_staging = true;
  ServerFixture fx(params);
  fx.server.submit_task(fx.make_task(10, 1));
  // Dataset with 5 files; the job needs only 2.
  const dms::DatasetId ds = fx.w.catalog.create_dataset("mc23", "prefetch");
  Job j;
  j.pandaid = 1;
  j.jeditaskid = 10;
  j.kind = JobKind::kUserAnalysis;
  j.base_exec_ms = 60'000;
  for (int i = 0; i < 5; ++i) {
    const dms::FileId f = fx.w.catalog.add_file(ds, 1'000'000);
    fx.w.replicas.add_replica(f, fx.w.t0_tape);
    if (i < 2) {
      j.input_files.push_back(f);
      j.ninputfilebytes += 1'000'000;
    }
  }
  fx.w.scheduler.schedule_at(0, [&, j = std::move(j)]() mutable {
    fx.server.submit_job(std::move(j));
  });
  fx.w.scheduler.run();

  EXPECT_EQ(fx.server.stats().stage_in_transfers, 2u);
  EXPECT_EQ(fx.server.stats().prefetch_transfers, 3u);
  EXPECT_EQ(fx.outcomes.size(), 5u);
}

TEST(WorkloadGenerator, BootstrapAndArrivals) {
  World w;
  sim::Scheduler& sched = w.scheduler;
  dms::TransferEngine engine(sched, w.topo, w.replicas, util::Rng(1),
                             ServerFixture::quiet_engine());
  Brokerage broker(w.topo, w.catalog, w.replicas, Brokerage::Params{});
  SiteQueues queues(sched, w.topo, util::Rng(2));
  PandaServer server(sched, w.topo, w.catalog, w.replicas, w.rses, engine,
                     broker, queues, util::Rng(3),
                     ServerFixture::quiet_params(), PandaServer::Hooks{});

  WorkloadParams params;
  params.n_input_datasets = 20;
  params.user_tasks_per_day = 100.0;
  params.prod_tasks_per_day = 40.0;
  WorkloadGenerator gen(sched, w.topo, w.catalog, w.replicas, w.rses, server,
                        util::Rng(4), params);
  gen.bootstrap_catalog();
  EXPECT_EQ(gen.input_datasets().size(), 20u);
  EXPECT_GT(w.catalog.file_count(), 0u);
  EXPECT_GT(w.replicas.replica_count(), 0u);
  EXPECT_FALSE(gen.tape_archives().empty());

  gen.start(util::hours(12));
  sched.run();
  EXPECT_GT(gen.stats().user_tasks, 0u);
  EXPECT_GT(gen.stats().user_jobs, gen.stats().user_tasks);
  EXPECT_GT(gen.stats().prod_tasks, 0u);
}

TEST(WorkloadGenerator, ColdDatasetsHaveNoDiskReplicas) {
  World w;
  dms::TransferEngine engine(w.scheduler, w.topo, w.replicas, util::Rng(1),
                             ServerFixture::quiet_engine());
  Brokerage broker(w.topo, w.catalog, w.replicas, Brokerage::Params{});
  SiteQueues queues(w.scheduler, w.topo, util::Rng(2));
  PandaServer server(w.scheduler, w.topo, w.catalog, w.replicas, w.rses,
                     engine, broker, queues, util::Rng(3),
                     ServerFixture::quiet_params(), PandaServer::Hooks{});
  WorkloadParams params;
  params.n_input_datasets = 40;
  params.cold_fraction = 0.5;
  params.tape_only_fraction = 1.0;
  WorkloadGenerator gen(w.scheduler, w.topo, w.catalog, w.replicas, w.rses,
                        server, util::Rng(4), params);
  gen.bootstrap_catalog();
  ASSERT_FALSE(gen.tape_only_datasets().empty());
  for (dms::DatasetId ds : gen.tape_only_datasets()) {
    for (dms::FileId f : w.catalog.files_of(ds)) {
      for (dms::RseId r : w.replicas.replicas(f)) {
        EXPECT_EQ(w.rses.rse(r).kind, dms::RseKind::kTape);
      }
    }
  }
}

}  // namespace
}  // namespace pandarus::wms
