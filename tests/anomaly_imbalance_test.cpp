// Unit tests for the anomaly detector (core) and the imbalance / error
// distribution analyses.
#include <gtest/gtest.h>

#include "analysis/imbalance.hpp"
#include "core/anomaly.hpp"

namespace pandarus {
namespace {

using telemetry::FileRecord;
using telemetry::JobRecord;
using telemetry::MetadataStore;
using telemetry::TransferRecord;

JobRecord job(std::int64_t pandaid, grid::SiteId site, bool failed = false,
              std::int32_t error = 0) {
  JobRecord j;
  j.pandaid = pandaid;
  j.jeditaskid = 100;
  j.computing_site = site;
  j.creation_time = 0;
  j.start_time = 1000;
  j.end_time = 2000;
  j.ninputfilebytes = 500;
  j.failed = failed;
  j.error_code = error;
  return j;
}

TransferRecord transfer(std::uint64_t id, const std::string& lfn,
                        std::uint64_t size, grid::SiteId src,
                        grid::SiteId dst, util::SimTime t0,
                        util::SimTime t1) {
  TransferRecord t;
  t.transfer_id = id;
  t.jeditaskid = 100;
  t.lfn = lfn;
  t.dataset = "ds";
  t.proddblock = "blk";
  t.scope = "mc23";
  t.file_size = size;
  t.source_site = src;
  t.destination_site = dst;
  t.activity = dms::Activity::kAnalysisDownload;
  t.started_at = t0;
  t.finished_at = t1;
  t.success = true;
  return t;
}

// --- gini ---------------------------------------------------------------

TEST(Gini, EvenDistributionIsZero) {
  const double even[] = {5, 5, 5, 5};
  EXPECT_NEAR(analysis::gini_coefficient(even), 0.0, 1e-12);
}

TEST(Gini, ConcentrationApproachesOne) {
  std::vector<double> values(100, 0.0);
  values[0] = 1e9;
  EXPECT_GT(analysis::gini_coefficient(values), 0.95);
}

TEST(Gini, KnownValue) {
  // For {1, 3}: gini = 0.25.
  const double v[] = {1.0, 3.0};
  EXPECT_NEAR(analysis::gini_coefficient(v), 0.25, 1e-12);
}

TEST(Gini, EmptyAndZeroSafe) {
  EXPECT_EQ(analysis::gini_coefficient({}), 0.0);
  const double zeros[] = {0.0, 0.0};
  EXPECT_EQ(analysis::gini_coefficient(zeros), 0.0);
}

// --- spatial / temporal imbalance ---------------------------------------

TEST(SpatialImbalance, AggregatesPerSite) {
  grid::Topology topo;
  for (const char* name : {"A", "B", "C"}) {
    grid::Site s;
    s.name = name;
    topo.add_site(s);
  }
  MetadataStore store;
  store.record_transfer(transfer(1, "f1", 1000, 0, 1, 0, 10));
  store.record_transfer(transfer(2, "f2", 500, 0, 0, 0, 10));  // local
  store.record_job(job(1, 0));
  store.record_job(job(2, 0, true, 1305));
  store.record_job(job(3, 1));

  const auto imbalance = analysis::spatial_imbalance(store, topo);
  ASSERT_EQ(imbalance.sites.size(), 3u);
  // Site 0 leads: out 1500, in 500.
  EXPECT_EQ(imbalance.sites[0].site, 0u);
  EXPECT_EQ(imbalance.sites[0].bytes_out, 1500u);
  EXPECT_EQ(imbalance.sites[0].bytes_in, 500u);
  EXPECT_EQ(imbalance.sites[0].jobs, 2u);
  EXPECT_EQ(imbalance.sites[0].failed_jobs, 1u);
  EXPECT_NEAR(imbalance.sites[0].failure_rate(), 0.5, 1e-12);
  EXPECT_GT(imbalance.gini_bytes, 0.3);  // site C idle
  EXPECT_GT(imbalance.top1_byte_share, 0.6);
}

TEST(TemporalImbalance, BinsAndPeak) {
  MetadataStore store;
  // Three transfers in bin 0, one in bin 2.
  for (std::uint64_t i = 0; i < 3; ++i) {
    store.record_transfer(transfer(i, "f", 1000, 0, 1, 100, 200));
  }
  store.record_transfer(
      transfer(9, "f", 500, 0, 1, util::hours(13), util::hours(14)));
  const auto temporal =
      analysis::temporal_imbalance(store, util::hours(6));
  ASSERT_EQ(temporal.series.size(), 2u);
  EXPECT_EQ(temporal.series[0].transfers, 3u);
  EXPECT_DOUBLE_EQ(temporal.peak_bytes, 3000.0);
  EXPECT_NEAR(temporal.peak_to_mean(), 3000.0 / 1750.0, 1e-9);
}

// --- error distribution --------------------------------------------------

TEST(ErrorDistribution, CountsAndShares) {
  MetadataStore store;
  store.record_job(job(1, 0, true, 1305));
  store.record_job(job(2, 0, true, 1305));
  store.record_job(job(3, 0, true, 1099));
  store.record_job(job(4, 0, false));
  store.record_job(job(5, 1, true, 1187));

  const auto all = analysis::error_distribution(store);
  EXPECT_EQ(all.total_jobs, 5u);
  EXPECT_EQ(all.total_failed, 4u);
  EXPECT_NEAR(all.share(1305), 0.5, 1e-12);
  EXPECT_NEAR(all.share(9999), 0.0, 1e-12);

  const auto site0 = analysis::error_distribution(store, 0);
  EXPECT_EQ(site0.total_failed, 3u);
  EXPECT_NEAR(site0.share(1305), 2.0 / 3.0, 1e-12);
}

TEST(ErrorDistribution, ShiftMetric) {
  analysis::ErrorDistribution a;
  a.total_failed = 10;
  a.by_code = {{1305, 5}, {1099, 5}};
  analysis::ErrorDistribution b;
  b.total_failed = 10;
  b.by_code = {{1305, 5}, {1099, 5}};
  EXPECT_NEAR(analysis::error_shift(a, b), 0.0, 1e-12);
  b.by_code = {{1187, 10}};
  EXPECT_NEAR(analysis::error_shift(a, b), 2.0, 1e-12);  // disjoint
}

// --- anomaly detector ---------------------------------------------------

struct DetectorFixture {
  MetadataStore store;

  core::MatchResult matched() {
    const core::Matcher matcher(store);
    return matcher.run(core::MatchOptions::rm2());
  }

  void add_job_with_transfer(std::int64_t pandaid, const std::string& lfn,
                             std::uint64_t size, util::SimTime t0,
                             util::SimTime t1, bool failed = false) {
    JobRecord j = job(pandaid, 0, failed);
    j.ninputfilebytes = size;
    store.record_job(j);
    FileRecord f;
    f.pandaid = pandaid;
    f.jeditaskid = 100;
    f.lfn = lfn;
    f.dataset = "ds";
    f.proddblock = "blk";
    f.scope = "mc23";
    f.file_size = size;
    store.record_file(f);
    store.record_transfer(
        transfer(static_cast<std::uint64_t>(pandaid) * 10, lfn, size, 0, 0,
                 t0, t1));
  }
};

TEST(AnomalyDetector, FlagsExcessiveTransferShare) {
  DetectorFixture fx;
  // Transfer occupies [0, 900) of the [0, 1000) queue: 90% > 75%.
  fx.add_job_with_transfer(1, "f1", 500, 0, 900);
  const auto report =
      core::AnomalyDetector().scan(fx.store, fx.matched());
  EXPECT_EQ(report.counts[static_cast<std::size_t>(
                core::AnomalyType::kExcessiveTransferShare)],
            1u);
  EXPECT_EQ(report.jobs_flagged, 1u);
}

TEST(AnomalyDetector, FlagsSpanningTransfer) {
  DetectorFixture fx;
  // Crosses start_time = 1000.
  fx.add_job_with_transfer(1, "f1", 500, 500, 1500, /*failed=*/true);
  const auto report =
      core::AnomalyDetector().scan(fx.store, fx.matched());
  EXPECT_EQ(report.counts[static_cast<std::size_t>(
                core::AnomalyType::kSpanningTransfer)],
            1u);
  EXPECT_NEAR(report.flagged_failure_rate, 1.0, 1e-12);
}

TEST(AnomalyDetector, FlagsRedundantDelivery) {
  DetectorFixture fx;
  fx.add_job_with_transfer(1, "f1", 500, 0, 100);
  // Same file delivered again to the same site within the matched set.
  fx.store.record_transfer(transfer(99, "f1", 500, 1, 0, 200, 300));
  const auto report =
      core::AnomalyDetector().scan(fx.store, fx.matched());
  EXPECT_EQ(report.counts[static_cast<std::size_t>(
                core::AnomalyType::kRedundantDelivery)],
            1u);
}

TEST(AnomalyDetector, FlagsStalledThroughput) {
  DetectorFixture fx;
  // Six fast background transfers set the link median...
  for (std::uint64_t i = 0; i < 6; ++i) {
    TransferRecord fast =
        transfer(900 + i, "bg" + std::to_string(i), 1'000'000, 0, 0,
                 static_cast<util::SimTime>(i * 10),
                 static_cast<util::SimTime>(i * 10 + 1));
    fast.jeditaskid = -1;
    fx.store.record_transfer(fast);
  }
  // ... and the matched transfer crawls 1000x slower.
  fx.add_job_with_transfer(1, "f1", 1'000'000, 0, 1000);
  const auto report =
      core::AnomalyDetector().scan(fx.store, fx.matched());
  EXPECT_EQ(report.counts[static_cast<std::size_t>(
                core::AnomalyType::kStalledThroughput)],
            1u);
  bool found = false;
  for (const auto& a : report.anomalies) {
    if (a.type == core::AnomalyType::kStalledThroughput) {
      EXPECT_GT(a.severity, 100.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AnomalyDetector, FlagsUnknownEndpoint) {
  DetectorFixture fx;
  fx.add_job_with_transfer(1, "f1", 500, 0, 100);
  fx.store.transfers_mutable()[0].destination_site = grid::kUnknownSite;
  const auto report =
      core::AnomalyDetector().scan(fx.store, fx.matched());
  EXPECT_EQ(report.counts[static_cast<std::size_t>(
                core::AnomalyType::kUnknownEndpoint)],
            1u);
}

TEST(AnomalyDetector, CleanJobsUnflagged) {
  DetectorFixture fx;
  // 10% of queue, nothing else wrong.
  fx.add_job_with_transfer(1, "f1", 500, 0, 100);
  const auto report =
      core::AnomalyDetector().scan(fx.store, fx.matched());
  EXPECT_EQ(report.jobs_flagged, 0u);
  EXPECT_EQ(report.jobs_scanned, 1u);
  EXPECT_TRUE(report.anomalies.empty());
}

TEST(AnomalyNames, AllDistinct) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < core::kAnomalyTypeCount; ++i) {
    names.insert(core::anomaly_name(static_cast<core::AnomalyType>(i)));
  }
  EXPECT_EQ(names.size(), core::kAnomalyTypeCount);
}

}  // namespace
}  // namespace pandarus
