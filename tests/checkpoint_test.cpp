// Checkpoint/resume: snapshot round trips, torn-snapshot fallback,
// per-day snapshot emission from run_campaign, and the core resume
// invariant — the resumed stream is byte-identical to an uninterrupted
// run, so any salvaged on-disk prefix splices back to full parity.
//
// None of these tests may touch core::Matcher: its metric counters feed
// the campaign sampler, so a match run between two campaigns would
// break the byte-parity comparisons below.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "obs/event_log.hpp"
#include "obs/recover.hpp"
#include "scenario/campaign.hpp"
#include "scenario/checkpoint.hpp"
#include "scenario/config.hpp"

namespace pandarus {
namespace {

/// Temp checkpoint directory under the test's working directory;
/// recursively cleared on scope exit (flat layout, known file names).
class TempDir {
 public:
  explicit TempDir(std::string path) : path_(std::move(path)) {
    ::mkdir(path_.c_str(), 0777);
  }
  ~TempDir() {
    for (std::int64_t day = 0; day < 64; ++day) {
      char name[64];
      std::snprintf(name, sizeof name, "%s/ckpt-day-%04lld.pckpt",
                    path_.c_str(), static_cast<long long>(day));
      std::remove(name);
    }
    ::rmdir(path_.c_str());
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

using scenario::Checkpoint;

Checkpoint sample_checkpoint(std::int64_t day) {
  Checkpoint ckpt;
  ckpt.config_digest = 0xABCDEF;
  ckpt.day = day;
  ckpt.sim_now = (day + 1) * 86'400'000;
  ckpt.log_watermark = 1234;
  ckpt.log_accepted = 1200;
  ckpt.log_dropped = 34;
  ckpt.log_bytes = 99'000;
  ckpt.prefix_bytes = 98'765;
  ckpt.prefix_crc = 0xDEADBEEF;
  ckpt.flows_installed = true;
  ckpt.fingerprint = {11, 22, 33, 44, 55, 66, 77, 88};
  ckpt.store_jobs_csv = "pandaid,jeditaskid\n1,2\n";
  ckpt.store_files_csv = "lfn\nfile.root\n";
  ckpt.store_transfers_csv = "";
  return ckpt;
}

TEST(CheckpointTest, SnapshotRoundTrip) {
  TempDir dir("ckpt_roundtrip");
  const Checkpoint ckpt = sample_checkpoint(3);
  ASSERT_TRUE(scenario::write_checkpoint(ckpt, dir.path()));
  std::string error;
  const auto loaded = scenario::load_latest_checkpoint(dir.path(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->config_digest, ckpt.config_digest);
  EXPECT_EQ(loaded->day, ckpt.day);
  EXPECT_EQ(loaded->sim_now, ckpt.sim_now);
  EXPECT_EQ(loaded->log_watermark, ckpt.log_watermark);
  EXPECT_EQ(loaded->log_accepted, ckpt.log_accepted);
  EXPECT_EQ(loaded->log_dropped, ckpt.log_dropped);
  EXPECT_EQ(loaded->log_bytes, ckpt.log_bytes);
  EXPECT_EQ(loaded->prefix_bytes, ckpt.prefix_bytes);
  EXPECT_EQ(loaded->prefix_crc, ckpt.prefix_crc);
  EXPECT_EQ(loaded->flows_installed, ckpt.flows_installed);
  EXPECT_EQ(loaded->fingerprint, ckpt.fingerprint);
  EXPECT_EQ(loaded->store_jobs_csv, ckpt.store_jobs_csv);
  EXPECT_EQ(loaded->store_files_csv, ckpt.store_files_csv);
  EXPECT_EQ(loaded->store_transfers_csv, ckpt.store_transfers_csv);
}

TEST(CheckpointTest, TornNewestSnapshotFallsBackToPrevious) {
  TempDir dir("ckpt_torn");
  ASSERT_TRUE(scenario::write_checkpoint(sample_checkpoint(0), dir.path()));
  ASSERT_TRUE(scenario::write_checkpoint(sample_checkpoint(1), dir.path()));
  // Tear the newest snapshot: drop its last 5 bytes.
  const std::string newest = dir.path() + "/ckpt-day-0001.pckpt";
  std::FILE* f = std::fopen(newest.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, 5);
  ASSERT_EQ(::truncate(newest.c_str(), size - 5), 0);
  std::string error;
  const auto loaded = scenario::load_latest_checkpoint(dir.path(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->day, 0);
  // With every snapshot torn, loading fails with a diagnostic.
  ASSERT_EQ(::truncate((dir.path() + "/ckpt-day-0000.pckpt").c_str(), 3), 0);
  const auto none = scenario::load_latest_checkpoint(dir.path(), &error);
  EXPECT_FALSE(none.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(CheckpointTest, ConfigDigestSeparatesSeedsNotOutputKnobs) {
  scenario::ScenarioConfig a = scenario::ScenarioConfig::small();
  scenario::ScenarioConfig b = a;
  EXPECT_EQ(scenario::config_digest(a), scenario::config_digest(b));
  b.checkpoint_dir = "/somewhere/else";  // output knob: digest-neutral
  EXPECT_EQ(scenario::config_digest(a), scenario::config_digest(b));
  b.seed = a.seed + 1;
  EXPECT_NE(scenario::config_digest(a), scenario::config_digest(b));
  b = a;
  b.days = a.days * 2;
  EXPECT_NE(scenario::config_digest(a), scenario::config_digest(b));
}

TEST(CheckpointTest, CampaignWritesPerDaySnapshotsAndStaysByteIdentical) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.seed = 7;

  // Reference: no checkpointing.
  std::string reference;
  {
    obs::EventLog log;
    log.install();
    (void)scenario::run_campaign(config);
    log.close();
    reference = log.to_ndjson();
    log.uninstall();
  }
  ASSERT_FALSE(reference.empty());

  TempDir dir("ckpt_campaign");
  config.checkpoint_dir = dir.path();
  std::string checkpointed;
  {
    obs::EventLog log;
    log.install();
    (void)scenario::run_campaign(config);
    log.close();
    checkpointed = log.to_ndjson();
    log.uninstall();
  }
  // Checkpointing is observation-only: the stream is untouched.
  EXPECT_EQ(checkpointed, reference);

  // One snapshot per drain-loop day: ceil(days) + 3-day grace window.
  std::string error;
  const auto latest = scenario::load_latest_checkpoint(dir.path(), &error);
  ASSERT_TRUE(latest.has_value()) << error;
  EXPECT_GE(latest->day, 3);
  EXPECT_EQ(latest->config_digest, scenario::config_digest(config));
  EXPECT_GT(latest->prefix_bytes, 0u);
  EXPECT_GT(latest->fingerprint.scheduler_processed, 0u);
  EXPECT_GT(latest->fingerprint.store_transfers, 0u);
  EXPECT_FALSE(latest->store_jobs_csv.empty());
}

TEST(CheckpointTest, ResumeSplicesBackToByteParity) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.seed = 7;

  TempDir dir("ckpt_resume");
  config.checkpoint_dir = dir.path();
  std::string reference;
  {
    obs::EventLog log;
    log.install();
    (void)scenario::run_campaign(config);
    log.close();
    reference = log.to_ndjson();
    log.uninstall();
  }

  // Simulate the crash: the on-disk stream ends mid-line somewhere past
  // the last full flush.
  const std::string torn = reference.substr(0, reference.size() * 3 / 5);
  const obs::RecoveryReport salvage = obs::salvage_ndjson(torn);
  ASSERT_TRUE(salvage.ok);
  const std::string salvaged = torn.substr(0, salvage.salvaged_bytes);

  config.checkpoint_dir.clear();
  const scenario::ResumeOutcome resume =
      scenario::resume_campaign(config, dir.path());
  ASSERT_TRUE(resume.ok) << resume.error;
  EXPECT_TRUE(resume.had_checkpoint);
  EXPECT_GE(resume.resumed_day, 0);
  EXPECT_TRUE(resume.fingerprint_verified);
  EXPECT_TRUE(resume.prefix_verified);

  // The re-execution reconverged bit-for-bit...
  EXPECT_EQ(resume.full_ndjson, reference);
  // ...so the salvaged prefix is a prefix of it, and the splice equals
  // the uninterrupted run.
  ASSERT_LE(salvaged.size(), resume.full_ndjson.size());
  EXPECT_EQ(resume.full_ndjson.compare(0, salvaged.size(), salvaged), 0);
  EXPECT_EQ(salvaged + resume.full_ndjson.substr(salvaged.size()),
            reference);
  // The checkpointed prefix is consistent with the returned suffix.
  EXPECT_EQ(resume.prefix_bytes + resume.suffix.size(),
            resume.full_ndjson.size());
}

TEST(CheckpointTest, ResumeWithoutSnapshotsRunsFromScratch) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.seed = 7;
  TempDir dir("ckpt_empty");
  const scenario::ResumeOutcome resume =
      scenario::resume_campaign(config, dir.path());
  EXPECT_TRUE(resume.ok) << resume.error;
  EXPECT_FALSE(resume.had_checkpoint);
  EXPECT_EQ(resume.resumed_day, -1);
  EXPECT_FALSE(resume.full_ndjson.empty());
  EXPECT_EQ(resume.suffix, resume.full_ndjson);
}

TEST(CheckpointTest, ResumeRejectsMismatchedConfig) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.seed = 7;
  TempDir dir("ckpt_mismatch");
  config.checkpoint_dir = dir.path();
  {
    obs::EventLog log;
    log.install();
    (void)scenario::run_campaign(config);
    log.close();
    log.uninstall();
  }
  scenario::ScenarioConfig other = config;
  other.checkpoint_dir.clear();
  other.seed = 8;
  const scenario::ResumeOutcome resume =
      scenario::resume_campaign(other, dir.path());
  EXPECT_FALSE(resume.ok);
  EXPECT_NE(resume.error.find("config"), std::string::npos);
}

}  // namespace
}  // namespace pandarus
