// Unit tests for the parallel utilities: thread pool, parallel_for,
// deterministic parallel_reduce, sharded map.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/sharded_map.hpp"
#include "parallel/thread_pool.hpp"

namespace pandarus::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] { ++counter; });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10'000);
  parallel_for_chunks(pool, hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_chunks(pool, 0, [&](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ParallelReduce, MatchesSerialSum) {
  ThreadPool pool(4);
  const std::size_t n = 100'000;
  struct Sum {
    std::uint64_t value = 0;
  };
  const Sum total = parallel_reduce<Sum>(
      pool, n, [](Sum& acc, std::size_t i) { acc.value += i; },
      [](Sum& into, Sum&& other) { into.value += other.value; });
  EXPECT_EQ(total.value, n * (n - 1) / 2);
}

TEST(ParallelReduce, DeterministicCombineOrder) {
  // Combining strings is order-sensitive; the reduction must combine in
  // chunk order regardless of completion order.
  ThreadPool pool(4);
  struct Cat {
    std::string value;
  };
  auto run = [&] {
    return parallel_reduce<Cat>(
               pool, 2048,
               [](Cat& acc, std::size_t i) {
                 if (i % 256 == 0) acc.value += std::to_string(i) + ",";
               },
               [](Cat& into, Cat&& other) { into.value += other.value; },
               /*min_chunk=*/64)
        .value;
  };
  const std::string first = run();
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(run(), first);
  EXPECT_EQ(first, "0,256,512,768,1024,1280,1536,1792,");
}

TEST(ShardedMap, PutGetContains) {
  ShardedMap<int, std::string> map(8);
  map.put(1, "one");
  map.put(2, "two");
  map.put(1, "uno");  // overwrite
  std::string out;
  EXPECT_TRUE(map.get(1, out));
  EXPECT_EQ(out, "uno");
  EXPECT_TRUE(map.contains(2));
  EXPECT_FALSE(map.contains(3));
  EXPECT_EQ(map.size(), 2u);
}

TEST(ShardedMap, UpdateCreatesDefault) {
  ShardedMap<int, int> map(4);
  map.update(7, [](int& v) { v += 5; });
  map.update(7, [](int& v) { v += 5; });
  int out = 0;
  EXPECT_TRUE(map.get(7, out));
  EXPECT_EQ(out, 10);
}

TEST(ShardedMap, ConcurrentUpdatesDontLoseWrites) {
  ShardedMap<int, int> map(16);
  ThreadPool pool(4);
  constexpr int kKeys = 64;
  constexpr int kPerKey = 500;
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 4; ++t) {
    futures.push_back(pool.submit([&] {
      for (int i = 0; i < kKeys * kPerKey / 4; ++i) {
        map.update(i % kKeys, [](int& v) { ++v; });
      }
    }));
  }
  for (auto& f : futures) f.get();
  std::uint64_t total = 0;
  map.for_each([&](int, int v) { total += static_cast<std::uint64_t>(v); });
  EXPECT_EQ(total, static_cast<std::uint64_t>(kKeys) * kPerKey);
}

}  // namespace
}  // namespace pandarus::parallel
