// Metric query engine: aggregate parsing, hand-computed aggregates,
// kind/time filters, bucketing and group-by ordering, quantile sketches,
// missing-field handling, deterministic JSON rendering, and the
// NDJSON-vs-colstore byte-parity guarantee over a recorded campaign.
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/event_source.hpp"
#include "analysis/metric_query.hpp"
#include "obs/colstore.hpp"
#include "obs/event_log.hpp"
#include "scenario/campaign.hpp"
#include "scenario/config.hpp"

namespace pandarus {
namespace {

/// Temp file in the test's working directory, removed on scope exit.
class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

analysis::MetricQueryResult query_file(const std::string& path,
                                       const analysis::MetricQuerySpec& spec) {
  auto source = analysis::open_event_source(path);
  EXPECT_NE(source, nullptr) << path;
  return analysis::run_metric_query(*source, spec);
}

const char kSmallStream[] =
    R"({"ts":1000,"kind":"transfer_done","entity":1,"bytes":100})"
    "\n"
    R"({"ts":1500,"kind":"transfer_done","entity":2,"bytes":300})"
    "\n"
    R"({"ts":2500,"kind":"transfer_done","entity":3,"bytes":200})"
    "\n"
    R"({"ts":3500,"kind":"transfer_fail","entity":4,"bytes":50})"
    "\n"
    R"({"ts":4500,"kind":"job_state","entity":5,"state":"running"})"
    "\n";

TEST(MetricAggregate, ParsesAllNamesAndRejectsUnknown) {
  using analysis::MetricAggregate;
  const std::vector<std::pair<std::string, MetricAggregate>> cases = {
      {"count", MetricAggregate::kCount}, {"sum", MetricAggregate::kSum},
      {"min", MetricAggregate::kMin},     {"max", MetricAggregate::kMax},
      {"mean", MetricAggregate::kMean},   {"p50", MetricAggregate::kP50},
      {"p95", MetricAggregate::kP95},     {"p99", MetricAggregate::kP99},
  };
  for (const auto& [name, expected] : cases) {
    MetricAggregate out;
    EXPECT_TRUE(analysis::parse_metric_aggregate(name, out)) << name;
    EXPECT_EQ(out, expected);
    EXPECT_EQ(analysis::metric_aggregate_name(expected), name);
  }
  MetricAggregate out;
  EXPECT_FALSE(analysis::parse_metric_aggregate("p42", out));
  EXPECT_FALSE(analysis::parse_metric_aggregate("", out));
}

TEST(MetricQuery, HandComputedAggregates) {
  TempFile file("mq_small.ndjson");
  write_file(file.path(), kSmallStream);

  analysis::MetricQuerySpec spec;
  spec.kinds = {"transfer_done"};
  spec.value_field = "bytes";
  spec.aggregates = {
      analysis::MetricAggregate::kCount, analysis::MetricAggregate::kSum,
      analysis::MetricAggregate::kMin,   analysis::MetricAggregate::kMax,
      analysis::MetricAggregate::kMean};
  const auto result = query_file(file.path(), spec);
  EXPECT_EQ(result.events_scanned, 5u);
  EXPECT_EQ(result.events_matched, 3u);
  ASSERT_EQ(result.rows.size(), 1u);
  const auto& row = result.rows[0];
  EXPECT_EQ(row.events, 3u);
  ASSERT_EQ(row.values.size(), 5u);
  EXPECT_DOUBLE_EQ(row.values[0], 3.0);    // count
  EXPECT_DOUBLE_EQ(row.values[1], 600.0);  // sum
  EXPECT_DOUBLE_EQ(row.values[2], 100.0);  // min
  EXPECT_DOUBLE_EQ(row.values[3], 300.0);  // max
  EXPECT_DOUBLE_EQ(row.values[4], 200.0);  // mean
}

TEST(MetricQuery, TimeRangeAndBucketing) {
  TempFile file("mq_buckets.ndjson");
  write_file(file.path(), kSmallStream);

  analysis::MetricQuerySpec spec;
  spec.kinds = {"transfer_done", "transfer_fail"};
  spec.ts_from = 1500;
  spec.bucket_ms = 1000;
  const auto result = query_file(file.path(), spec);
  // ts 1000 is filtered out; 1500 → bucket 1000, 2500 → 2000, 3500 → 3000.
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0].bucket_start, 1000);
  EXPECT_EQ(result.rows[1].bucket_start, 2000);
  EXPECT_EQ(result.rows[2].bucket_start, 3000);
  for (const auto& row : result.rows) EXPECT_EQ(row.events, 1u);
}

TEST(MetricQuery, GroupByKindAndMissingFields) {
  TempFile file("mq_groups.ndjson");
  write_file(file.path(), kSmallStream);

  analysis::MetricQuerySpec spec;
  spec.group_by = {"kind", "state"};
  const auto result = query_file(file.path(), spec);
  // Groups sort lexicographically; events without "state" group as "".
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0].group,
            (std::vector<std::string>{"job_state", "running"}));
  EXPECT_EQ(result.rows[1].group,
            (std::vector<std::string>{"transfer_done", ""}));
  EXPECT_EQ(result.rows[1].events, 3u);
  EXPECT_EQ(result.rows[2].group,
            (std::vector<std::string>{"transfer_fail", ""}));
}

TEST(MetricQuery, CountWithValueFieldCountsOnlyEventsCarryingIt) {
  TempFile file("mq_count_field.ndjson");
  write_file(file.path(), kSmallStream);

  analysis::MetricQuerySpec spec;
  spec.value_field = "bytes";  // job_state has no bytes field
  spec.aggregates = {analysis::MetricAggregate::kCount};
  const auto result = query_file(file.path(), spec);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].events, 5u);          // all events landed
  EXPECT_DOUBLE_EQ(result.rows[0].values[0], 4.0);  // but 4 carried bytes
}

TEST(MetricQuery, QuantilesExactForSmallCells) {
  // The P² sketch is exact for up to five observations per cell.
  std::string stream;
  for (int v : {10, 20, 30, 40, 50}) {
    stream += R"({"ts":1000,"kind":"m","entity":0,"v":)";
    stream += std::to_string(v);
    stream += "}\n";
  }
  TempFile file("mq_quantiles.ndjson");
  write_file(file.path(), stream);

  analysis::MetricQuerySpec spec;
  spec.value_field = "v";
  spec.aggregates = {analysis::MetricAggregate::kP50};
  const auto result = query_file(file.path(), spec);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0].values[0], 30.0);
}

TEST(MetricQuery, EmptyStreamYieldsNoRows) {
  TempFile file("mq_empty.ndjson");
  write_file(file.path(), "");
  analysis::MetricQuerySpec spec;
  const auto result = query_file(file.path(), spec);
  EXPECT_TRUE(result.rows.empty());
  EXPECT_EQ(result.events_scanned, 0u);
}

TEST(MetricQuery, JsonRenderingIsDeterministic) {
  TempFile file("mq_json.ndjson");
  write_file(file.path(), kSmallStream);
  analysis::MetricQuerySpec spec;
  spec.kinds = {"transfer_done"};
  spec.value_field = "bytes";
  spec.aggregates = {analysis::MetricAggregate::kMean};
  const auto result = query_file(file.path(), spec);
  std::ostringstream a;
  std::ostringstream b;
  analysis::write_metric_query_json(a, spec, result);
  analysis::write_metric_query_json(b, spec, result);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"mean\":200"), std::string::npos) << a.str();
  EXPECT_EQ(a.str().back(), '\n');
}

TEST(MetricQuery, NdjsonAndColstoreProduceIdenticalJson) {
  // Record a small campaign, encode it both ways, and require the query
  // engine to render byte-identical results from either container.
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.days = 0.25;
  config.seed = 20250401;
  obs::EventLog log;
  log.install();
  (void)scenario::run_campaign(config);
  log.uninstall();
  log.close();

  TempFile ndjson_file("mq_campaign.ndjson");
  TempFile col_file("mq_campaign.colstore");
  ASSERT_TRUE(log.write_ndjson(ndjson_file.path()));
  ASSERT_TRUE(obs::write_colstore(log, col_file.path()));

  const std::vector<analysis::MetricQuerySpec> specs = [] {
    std::vector<analysis::MetricQuerySpec> out;
    analysis::MetricQuerySpec bytes;
    bytes.kinds = {"transfer_done"};
    bytes.bucket_ms = 3'600'000;
    bytes.value_field = "bytes";
    bytes.aggregates = {analysis::MetricAggregate::kCount,
                        analysis::MetricAggregate::kSum,
                        analysis::MetricAggregate::kP95};
    out.push_back(std::move(bytes));
    analysis::MetricQuerySpec kinds;
    kinds.group_by = {"kind"};
    out.push_back(std::move(kinds));
    return out;
  }();

  for (const auto& spec : specs) {
    const auto from_text = query_file(ndjson_file.path(), spec);
    const auto from_col = query_file(col_file.path(), spec);
    EXPECT_TRUE(from_text.source_error.empty()) << from_text.source_error;
    EXPECT_TRUE(from_col.source_error.empty()) << from_col.source_error;
    EXPECT_GT(from_text.events_matched, 0u);
    std::ostringstream text_json;
    std::ostringstream col_json;
    analysis::write_metric_query_json(text_json, spec, from_text);
    analysis::write_metric_query_json(col_json, spec, from_col);
    EXPECT_EQ(text_json.str(), col_json.str());
  }
}

}  // namespace
}  // namespace pandarus
