// Unit tests for the util module: RNG determinism and distribution
// sanity, statistics accumulators, histograms, time/format helpers, CSV.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace pandarus::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.fork(1);
  Rng parent2(7);
  Rng child2 = parent2.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
  // Different tags give different streams.
  Rng parent3(7);
  Rng other = parent3.fork(2);
  int equal = 0;
  Rng child3 = Rng(7).fork(1);
  for (int i = 0; i < 100; ++i) equal += other.next_u64() == child3.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(rng.exponential(42.0));
  EXPECT_NEAR(stats.mean(), 42.0, 1.0);
}

TEST(Rng, LognormalMedianApproximatelyCorrect) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 50'000; ++i) xs.push_back(rng.lognormal_median(10.0, 0.5));
  EXPECT_NEAR(quantile(xs, 0.5), 10.0, 0.3);
}

TEST(Rng, ParetoBoundedStaysInRange) {
  Rng rng(19);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.pareto_bounded(1.0, 100.0, 1.2);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0 + 1e-9);
  }
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(23);
  OnlineStats small;
  OnlineStats large;
  for (int i = 0; i < 20'000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.5)));
    large.add(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(small.mean(), 3.5, 0.1);
  EXPECT_NEAR(large.mean(), 200.0, 2.0);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  const double weights[] = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30'000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(HashMix, DeterministicAndSpread) {
  EXPECT_EQ(hash_mix(1, 2, 3), hash_mix(1, 2, 3));
  EXPECT_NE(hash_mix(1, 2, 3), hash_mix(1, 2, 4));
  EXPECT_NE(hash_mix(1, 2), hash_mix(2, 1));
  const double u = hash_unit(hash_mix(99, 100));
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(GeometricMean, MatchesClosedForm) {
  GeometricMean g;
  g.add(1.0);
  g.add(10.0);
  g.add(100.0);
  EXPECT_NEAR(g.value(), 10.0, 1e-9);
}

TEST(GeometricMean, SkipsNonPositive) {
  GeometricMean g;
  g.add(4.0);
  g.add(0.0);
  g.add(-3.0);
  g.add(9.0);
  EXPECT_EQ(g.count(), 2u);
  EXPECT_EQ(g.skipped(), 2u);
  EXPECT_NEAR(g.value(), 6.0, 1e-9);
}

TEST(GeometricMean, HeavyTailBelowArithmeticMean) {
  // The paper's Fig. 3 observation: mean 77.75 TB vs geomean 1.11 TB.
  Rng rng(37);
  OnlineStats arith;
  GeometricMean geo;
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.pareto_bounded(1.0, 1e6, 0.6);
    arith.add(x);
    geo.add(x);
  }
  EXPECT_GT(arith.mean(), 10.0 * geo.value());
}

TEST(Quantiles, InterpolatesBetweenOrderStatistics) {
  Quantiles q({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(q(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q(1.0), 4.0);
  EXPECT_DOUBLE_EQ(q.median(), 2.5);
  EXPECT_DOUBLE_EQ(q(1.0 / 3.0), 2.0);
}

TEST(PearsonCorrelation, PerfectAndNone) {
  const double x[] = {1, 2, 3, 4, 5};
  const double y[] = {2, 4, 6, 8, 10};
  const double z[] = {5, 5, 5, 5, 5};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  EXPECT_EQ(pearson_correlation(x, z), 0.0);  // zero variance side
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(9.999);
  h.add(10.0);
  h.add(5.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, CumulativeBelow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.cumulative_below(5.0), 5.0, 0.51);
  EXPECT_DOUBLE_EQ(h.cumulative_below(0.0), 0.0);
  EXPECT_NEAR(h.cumulative_below(100.0), 10.0, 1e-9);
}

TEST(Log2Histogram, CountsPowers) {
  Log2Histogram h;
  h.add(1.5);
  h.add(2.5);
  h.add(1024.0);
  h.add(0.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Time, FormatAnchorsToAprilFirst) {
  EXPECT_EQ(format_time(0), "04-01 00:00:00");
  EXPECT_EQ(format_time(hours(25) + minutes(1) + seconds(2)),
            "04-02 01:01:02");
  // Month rollover: April has 30 days.
  EXPECT_EQ(format_time(days(30)), "05-01 00:00:00");
}

TEST(Time, DurationsCompose) {
  EXPECT_EQ(seconds(1.5), 1500);
  EXPECT_EQ(minutes(2), 120'000);
  EXPECT_EQ(hours(1), 3'600'000);
  EXPECT_EQ(days(1), 86'400'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(42)), 42.0);
  EXPECT_DOUBLE_EQ(to_days(days(3)), 3.0);
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration(seconds(42.5)), "42.5s");
  EXPECT_EQ(format_duration(minutes(90)), "1h 30m 00s");
  EXPECT_EQ(format_duration(days(2) + hours(3)), "2d 03h 00m 00s");
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(4.6e9), "4.60 GB");
  EXPECT_EQ(format_bytes(957.98e15), "957.98 PB");
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(-2e3, 1), "-2.0 KB");
}

TEST(Format, RateAndCountsAndPercent) {
  EXPECT_EQ(format_rate(163.9e6), "163.9 MBps");
  EXPECT_EQ(format_rate(2.5e9), "2.5 GBps");
  EXPECT_EQ(format_count(std::uint64_t{1'585'229}), "1,585,229");
  EXPECT_EQ(format_count(std::int64_t{-12'345}), "-12,345");
  EXPECT_EQ(format_percent(0.0843), "8.43%");
}

TEST(Table, RendersAlignedRows) {
  Table t({"a", "bbb"});
  t.set_align(1, Align::kRight);
  t.add_row({"x", "1"});
  t.add_separator();
  t.add_row({"long", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a    | bbb |"), std::string::npos);
  EXPECT_NE(s.find("| x    |   1 |"), std::string::npos);
  EXPECT_NE(s.find("| long |  22 |"), std::string::npos);
}

TEST(Csv, RoundTripsQuoting) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row("plain", "with,comma", "with\"quote", 42);
  const auto rows = [&] {
    std::istringstream is(os.str());
    return read_csv(is);
  }();
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 4u);
  EXPECT_EQ(rows[0][0], "plain");
  EXPECT_EQ(rows[0][1], "with,comma");
  EXPECT_EQ(rows[0][2], "with\"quote");
  EXPECT_EQ(rows[0][3], "42");
}

TEST(Csv, ParsesEmptyFields) {
  const auto fields = parse_csv_line("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Json, ParsesFlatEventObject) {
  const auto v = json::parse(
      R"({"ts":1800000,"kind":"sample","entity":0,"rate":2.5,)"
      R"("ok":true,"name":"a\"b\n","none":null})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, json::Value::Kind::kObject);
  EXPECT_EQ(v->get_int("ts"), 1800000);
  EXPECT_EQ(v->get_string("kind"), "sample");
  EXPECT_DOUBLE_EQ(v->get_double("rate"), 2.5);
  EXPECT_TRUE(v->get_bool("ok"));
  EXPECT_EQ(v->get_string("name"), "a\"b\n");
  ASSERT_NE(v->find("none"), nullptr);
  EXPECT_EQ(v->find("none")->kind, json::Value::Kind::kNull);
  EXPECT_EQ(v->get_int("missing", -7), -7);
}

TEST(Json, Int64RoundTripsLosslessly) {
  // 2^60 is not representable in a double; the parser must keep the
  // integer path (is_int) for SimTime-scale values.
  const auto v = json::parse("{\"big\":1152921504606846976,\"neg\":-5}");
  ASSERT_TRUE(v.has_value());
  ASSERT_NE(v->find("big"), nullptr);
  EXPECT_TRUE(v->find("big")->is_int);
  EXPECT_EQ(v->get_int("big"), std::int64_t{1} << 60);
  EXPECT_EQ(v->get_int("neg"), -5);
  // Doubles stay doubles.
  const auto d = json::parse("3.25e2");
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->is_int);
  EXPECT_DOUBLE_EQ(d->as_double(), 325.0);
}

TEST(Json, ArraysAndNestingAndSourceOrder) {
  const auto v = json::parse(R"({"b":[1,2,3],"a":{"x":"y"}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->obj.size(), 2u);
  EXPECT_EQ(v->obj[0].first, "b");  // source order preserved
  EXPECT_EQ(v->obj[1].first, "a");
  ASSERT_EQ(v->obj[0].second.arr.size(), 3u);
  EXPECT_EQ(v->obj[0].second.arr[2].as_int(), 3);
  EXPECT_EQ(v->obj[1].second.get_string("x"), "y");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(json::parse("").has_value());
  EXPECT_FALSE(json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(json::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(json::parse("\"unterminated").has_value());
  EXPECT_FALSE(json::parse("[1,2").has_value());
}

TEST(Log, ParseLogLevelNamesAndFallback) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn", LogLevel::kInfo), LogLevel::kWarning);
  EXPECT_EQ(parse_log_level("warning", LogLevel::kInfo), LogLevel::kWarning);
  EXPECT_EQ(parse_log_level("error", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kWarning),
            LogLevel::kWarning);
  EXPECT_EQ(parse_log_level("", LogLevel::kInfo), LogLevel::kInfo);
}

}  // namespace
}  // namespace pandarus::util
