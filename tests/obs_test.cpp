// Tests for the obs layer: sharded counter aggregation under thread-pool
// contention, histogram bucket edges, exporter well-formedness (parsed
// back with a minimal JSON parser), trace-event recording, registry
// reset, env-hook idempotency, and the determinism guard (instrumented
// and uninstrumented campaigns must produce identical matched-job
// counts).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/relaxed.hpp"
#include "json_validator.hpp"
#include "obs/env.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "scenario/campaign.hpp"

namespace {

using namespace pandarus;
// Fully qualified: `testing` alone would be ambiguous with gtest's.
using JsonValidator = pandarus::testing::JsonValidator;

// --- registry -------------------------------------------------------------

TEST(ObsCounter, AggregatesUnderThreadPoolContention) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("test_contended_total");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kIncrements = 20'000;

  parallel::ThreadPool pool(kThreads);
  std::vector<std::future<void>> futures;
  futures.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    futures.push_back(pool.submit([&counter] {
      for (std::uint64_t i = 0; i < kIncrements; ++i) counter.inc();
    }));
  }
  for (auto& f : futures) f.get();

  EXPECT_EQ(counter.value(), kThreads * kIncrements);
  EXPECT_EQ(registry.snapshot().counter_value("test_contended_total"),
            kThreads * kIncrements);
}

TEST(ObsCounter, LookupByNameReturnsSameInstance) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("dup_total", "first help wins");
  obs::Counter& b = registry.counter("dup_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(a.help(), "first help wins");
}

TEST(ObsGauge, SetAndAdd) {
  obs::Registry registry;
  obs::Gauge& gauge = registry.gauge("test_depth");
  gauge.set(10);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.set(-5);
  EXPECT_EQ(registry.snapshot().gauge_value("test_depth"), -5);
}

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("test_hist", {1.0, 2.0, 4.0});

  h.observe(0.5);  // <= 1       -> bucket 0
  h.observe(1.0);  // == edge    -> bucket 0 (le semantics)
  h.observe(1.5);  // <= 2       -> bucket 1
  h.observe(4.0);  // == edge    -> bucket 2
  h.observe(99.0);  // > last    -> +Inf bucket

  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 99.0);

  const obs::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].buckets.size(), 4u);
  EXPECT_EQ(snap.histograms[0].count, 5u);
}

TEST(ObsSnapshot, SortedByNameAndMissingLookupsAreZero) {
  obs::Registry registry;
  registry.counter("zebra_total").inc();
  registry.counter("alpha_total").inc(2);
  const obs::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha_total");
  EXPECT_EQ(snap.counters[1].name, "zebra_total");
  EXPECT_EQ(snap.counter_value("does_not_exist"), 0u);
  EXPECT_EQ(snap.gauge_value("does_not_exist"), 0);
}

// --- quantile sketches ------------------------------------------------------

TEST(ObsQuantile, EmptySketchEstimatesZero) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("q_empty", {1.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  const obs::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].p50, 0.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].p99, 0.0);
}

TEST(ObsQuantile, OneSampleIsExactForEveryQuantile) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("q_one", {100.0});
  h.observe(42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 42.0);
}

TEST(ObsQuantile, TwoSamplesInterpolateLinearly) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("q_two", {100.0});
  // Insertion order must not matter: the exact path sorts.
  h.observe(20.0);
  h.observe(10.0);
  // 0-based fractional rank q * (n - 1) over sorted {10, 20}.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 19.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 19.9);
}

TEST(ObsQuantile, UntrackedQuantileReturnsZero) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("q_untracked", {100.0});
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 0.0);  // only p50/p95/p99 are sketched
}

TEST(ObsQuantile, MonotoneStreamStaysAccurate) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("q_stream", {1e9});
  constexpr int kSamples = 10'000;
  for (int i = 1; i <= kSamples; ++i) h.observe(static_cast<double>(i));
  // P² on a uniform monotone stream should land within a few percent of
  // the true order statistics.
  EXPECT_NEAR(h.quantile(0.5), 5'000.0, 250.0);
  EXPECT_NEAR(h.quantile(0.95), 9'500.0, 475.0);
  EXPECT_NEAR(h.quantile(0.99), 9'900.0, 495.0);
  // Estimates surface in both exporters.
  const obs::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].p50, h.quantile(0.5));
  const std::string json = obs::export_json(snap);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  const std::string prom = obs::export_prometheus(snap);
  EXPECT_NE(prom.find("q_stream_p50 "), std::string::npos);
  EXPECT_NE(prom.find("q_stream_p95 "), std::string::npos);
  EXPECT_NE(prom.find("q_stream_p99 "), std::string::npos);
}

// --- timestamp contract -----------------------------------------------------

TEST(ObsTime, MicrosMillisRoundTrip) {
  EXPECT_EQ(obs::to_micros(0), 0);
  EXPECT_EQ(obs::to_micros(3), 3000);
  EXPECT_EQ(obs::to_micros(-2), -2000);
  EXPECT_EQ(obs::to_millis(4500), 4);  // truncation toward zero
  EXPECT_EQ(obs::to_millis(obs::to_micros(987'654)), 987'654);
}

// --- exporters ------------------------------------------------------------

TEST(ObsExport, JsonParsesBack) {
  obs::Registry registry;
  registry.counter("c_total", "a counter").inc(42);
  registry.gauge("g").set(-7);
  obs::Histogram& h = registry.histogram("h_seconds", {0.001, 0.1, 1.0});
  h.observe(0.05);
  h.observe(5.0);

  const std::string json = obs::export_json(registry.snapshot());
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"c_total\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"g\": -7"), std::string::npos);
  EXPECT_NE(json.find("\"overflow\": 1"), std::string::npos);
}

TEST(ObsExport, PrometheusShape) {
  obs::Registry registry;
  registry.counter("c_total", "help text").inc(3);
  registry.gauge("g").set(9);
  obs::Histogram& h = registry.histogram("h_seconds", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(10.0);

  const std::string text = obs::export_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# HELP c_total help text\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE c_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("c_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g gauge\n"), std::string::npos);
  // Buckets are cumulative in the exposition format.
  EXPECT_NE(text.find("h_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("h_seconds_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("h_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("h_seconds_count 3\n"), std::string::npos);
}

// --- tracing --------------------------------------------------------------

TEST(ObsTrace, ChromeJsonIsWellFormedAcrossThreads) {
  obs::TraceRecorder recorder;
  recorder.install();
  {
    const obs::ScopedSpan outer("outer", "test", 42);
    parallel::ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < 4; ++t) {
      futures.push_back(pool.submit([] {
        for (int i = 0; i < 50; ++i) {
          const obs::ScopedSpan span("worker_span", "test");
        }
      }));
    }
    for (auto& f : futures) f.get();
    pool.wait_idle();
  }
  recorder.uninstall();

  // 1 outer + 4*50 worker spans, plus the pool's own pool/task spans.
  EXPECT_GE(recorder.event_count(), 201u);
  EXPECT_EQ(recorder.dropped(), 0u);

  const std::string json = recorder.to_chrome_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"worker_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"v\": 42}"), std::string::npos);
}

TEST(ObsTrace, OverflowCountsDroppedAndJsonStaysValid) {
  obs::TraceRecorder recorder(/*max_events_per_thread=*/4);
  recorder.install();
  for (int i = 0; i < 10; ++i) {
    const obs::ScopedSpan span("tiny", "test");
  }
  recorder.uninstall();
  EXPECT_EQ(recorder.event_count(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  EXPECT_TRUE(JsonValidator(recorder.to_chrome_json()).valid());
}

TEST(ObsTrace, NoRecorderMeansNoRecording) {
  ASSERT_EQ(obs::TraceRecorder::installed(), nullptr);
  {
    const obs::ScopedSpan span("ignored", "test");
  }
  obs::TraceRecorder recorder;
  EXPECT_EQ(recorder.event_count(), 0u);
}

// --- registry reset ---------------------------------------------------------

TEST(ObsRegistry, ResetForTestZeroesValuesButKeepsRegistrations) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("r_total", "kept help");
  obs::Gauge& g = registry.gauge("r_depth");
  obs::Histogram& h = registry.histogram("r_hist", {1.0, 2.0});
  c.inc(41);
  g.set(-3);
  h.observe(1.5);
  h.observe(9.0);

  registry.reset_for_test();

  // Values are zero, but the addresses and metadata survive, so code
  // holding references keeps working.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(h.bucket(i), 0u);
  EXPECT_EQ(&registry.counter("r_total"), &c);
  EXPECT_EQ(registry.counter("r_total").help(), "kept help");
  c.inc(5);
  EXPECT_EQ(registry.snapshot().counter_value("r_total"), 5u);
}

// --- env hooks --------------------------------------------------------------

TEST(ObsEnv, InstallEnvHooksIsIdempotent) {
  // Without PANDARUS_METRICS/TRACE/EVENTS set this is a no-op; the
  // contract under test is that repeated calls are safe and agree.
  const bool first = obs::install_env_hooks();
  const bool second = obs::install_env_hooks();
  EXPECT_EQ(first, second);
}

// --- determinism guard ------------------------------------------------------

TEST(ObsDeterminism, InstrumentedRunMatchesUninstrumentedRun) {
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.days = 0.5;
  config.seed = 20250401;

  const auto run_once = [&config] {
    const scenario::ScenarioResult result = scenario::run_campaign(config);
    const core::Matcher matcher(result.store);
    const core::TriMatchResult tri = core::run_all_methods(matcher);
    return std::tuple{result.events_processed,
                      tri.exact.matched_job_count(),
                      tri.rm1.matched_job_count(),
                      tri.rm2.matched_job_count()};
  };

  const auto plain = run_once();

  obs::TraceRecorder recorder;
  recorder.install();
  const auto traced = run_once();
  recorder.uninstall();

  EXPECT_EQ(plain, traced);
  EXPECT_GT(recorder.event_count(), 0u);
}

// --- sampler edge cases -----------------------------------------------------

TEST(ObsSampler, ZeroDayCampaignProducesNoRowsAndNoCrash) {
  obs::EventLog log;
  log.install();
  scenario::ScenarioConfig config = scenario::ScenarioConfig::small();
  config.days = 0.0;
  const scenario::ScenarioResult result = scenario::run_campaign(config);
  log.uninstall();
  log.close();
  EXPECT_TRUE(result.drained);
  // A zero-length window schedules no sampler ticks: the stream holds
  // no "sample" events, but the envelope events are still there.
  const std::string ndjson = log.to_ndjson();
  EXPECT_EQ(ndjson.find("\"kind\":\"sample\""), std::string::npos);
  EXPECT_NE(ndjson.find("\"kind\":\"campaign_meta\""), std::string::npos);
}

TEST(ObsSampler, NeverTickingSeriesStaysFlatZero) {
  obs::Registry registry;
  obs::Counter& silent = registry.counter("never_ticks_total");
  obs::Sampler sampler(1000);
  sampler.add_counter(silent);
  for (int i = 0; i < 5; ++i) sampler.sample_at(1000 * (i + 1));
  ASSERT_EQ(sampler.rows().size(), 5u);
  for (const auto& row : sampler.rows()) {
    ASSERT_EQ(row.values.size(), 1u);
    EXPECT_EQ(row.values[0], 0);
  }
}

TEST(ObsSampler, ColumnsAddedAfterSamplingStartsWidenLaterRows) {
  obs::Registry registry;
  obs::Counter& early = registry.counter("early_total");
  obs::Sampler sampler(1000);
  sampler.add_counter(early);
  early.inc(3);
  sampler.sample_at(1000);

  // A counter registered after the first tick: earlier rows keep their
  // narrower shape; later rows and events carry the new column.
  obs::Counter& late = registry.counter("late_total");
  sampler.add_counter(late);
  late.inc(7);
  sampler.sample_at(2000);

  ASSERT_EQ(sampler.columns().size(), 2u);
  ASSERT_EQ(sampler.rows().size(), 2u);
  EXPECT_EQ(sampler.rows()[0].values,
            (std::vector<std::int64_t>{3}));
  EXPECT_EQ(sampler.rows()[1].values,
            (std::vector<std::int64_t>{3, 7}));
}

TEST(ObsSampler, RowObserverSeesRowsInStreamOrder) {
  obs::Registry registry;
  obs::Counter& jobs = registry.counter("jobs_total");
  obs::Sampler sampler(1000);
  sampler.add_counter(jobs);

  struct Seen {
    std::int64_t ts;
    std::vector<std::string> names;
    std::vector<std::int64_t> values;
  };
  std::vector<Seen> seen;
  std::vector<std::int64_t> emitter_ts;
  sampler.set_row_observer(
      [&seen](std::int64_t ts, const std::vector<std::string>& names,
              const std::vector<std::int64_t>& values) {
        seen.push_back({ts, names, values});
      });
  sampler.add_emitter([&emitter_ts, &seen](std::int64_t ts) {
    // Emitters run after the observer — the stream order the health
    // engine depends on (sample row first, then per-link events).
    EXPECT_EQ(seen.back().ts, ts);
    emitter_ts.push_back(ts);
  });

  jobs.inc(2);
  sampler.sample_at(1000);
  jobs.inc(3);
  sampler.sample_at(2000);

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].ts, 1000);
  EXPECT_EQ(seen[0].names, (std::vector<std::string>{"jobs_total"}));
  EXPECT_EQ(seen[0].values, (std::vector<std::int64_t>{2}));
  EXPECT_EQ(seen[1].values, (std::vector<std::int64_t>{5}));
  EXPECT_EQ(emitter_ts, (std::vector<std::int64_t>{1000, 2000}));
}

}  // namespace
